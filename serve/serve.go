// Package serve is the production HTTP serving layer over the SD-Query
// engines: an HTTP/JSON API on top of ShardedIndex (or any Index), built
// for heavy concurrent traffic.
//
//	POST   /v1/topk          one SD-Query → top-k results
//	POST   /v1/batch         many queries in one call
//	POST   /v1/insert        add a point
//	DELETE /v1/points/{id}   tombstone a point
//	POST   /v1/admin/swap    zero-downtime swap to a persisted index
//	GET    /healthz          liveness (503 while draining), node role, lag
//	GET    /metrics          Prometheus text exposition
//	GET    /statz            JSON diagnostic snapshot
//	GET    /v1/repl/*        replication streams for followers (repl.go)
//
// Four serving mechanics distinguish it from a plain mux over the engine:
//
//   - Request coalescing (coalesce.go): concurrently-arriving /v1/topk
//     requests are gathered — bounded window, bounded batch — into single
//     BatchTopK calls, riding the engine's pooled, pipelined batch path
//     instead of paying one independent shard fan-out per request.
//   - Hot-query result cache (cache.go, sketch.go; WithResultCache):
//     answers are cached keyed on canonical query bytes and versioned by
//     the snapshot epoch, which every insert/remove/compaction/swap
//     publish bumps — so invalidation is free and a hit is byte-identical
//     to what the engine would return now. A HeavyKeeper top-k frequency
//     sketch gates admission so only the Zipf head of the traffic occupies
//     the bounded cache, and the hit path allocates nothing and never
//     enters the coalescer queue.
//   - Backpressure: the admission queue and the per-endpoint concurrency
//     limits are bounded; when they are full the server answers 429 with
//     Retry-After immediately instead of letting goroutines and latency
//     pile up. Per-request deadlines (WithRequestTimeout) cancel queries
//     mid-aggregation through the engine's TopKContext plumbing.
//   - Zero-downtime swap (swap.go): POST /v1/admin/swap loads a persisted
//     index and publishes it with one atomic pointer store. In-flight
//     queries keep the index they grabbed — the engine's snapshot
//     discipline guarantees each request a consistent view — so no request
//     ever observes a torn index. SIGTERM handling in cmd/sdserver drains
//     gracefully: /healthz flips to 503, in-flight requests finish, then
//     the coalescer shuts down.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	sdquery "repro"
)

// Index is the engine surface the server needs. *sdquery.ShardedIndex
// implements it directly; wrap an *sdquery.SDIndex with AsIndex.
type Index interface {
	TopK(q sdquery.Query) ([]sdquery.Result, error)
	TopKContext(ctx context.Context, q sdquery.Query) ([]sdquery.Result, error)
	TopKWithStats(q sdquery.Query) ([]sdquery.Result, sdquery.QueryStats, error)
	BatchTopK(queries []sdquery.Query) ([][]sdquery.Result, error)
	BatchTopKContext(ctx context.Context, queries []sdquery.Query) ([][]sdquery.Result, error)
	Insert(p []float64) (int, error)
	Remove(id int) bool
	Len() int
	Bytes() int
	Roles() []sdquery.Role
	// Epoch is the version number of the index's visible row set: strictly
	// increasing across inserts, removes, and compactions, equal across
	// calls only when nothing changed. The result cache keys entries on it,
	// so a mutation invalidates every cached answer without any explicit
	// invalidation path.
	Epoch() uint64
}

// Optional index capabilities, surfaced in metrics when present.
type segmenter interface {
	Segments() (segments, memRows int)
}
type compactioner interface {
	Compactions() uint64
}
type closer interface {
	Close()
}
type sharder interface {
	Shards() int
}

// walStater exposes write-ahead-log health — implemented by WithWAL indexes.
// A sticky WALStats.Err flips the server into read-only degradation: writes
// answer 503, /healthz and /metrics report the state, reads keep flowing.
type walStater interface {
	WALStats() sdquery.WALStats
}

// durableRemover distinguishes "not live" from "log failed" on removes —
// without it DELETE falls back to the bool-only Remove.
type durableRemover interface {
	RemoveDurable(id int) (bool, error)
}

// syncer is the drain hook: Shutdown fsyncs the index's WAL through it so
// an interval- or never-synced log survives power loss after a clean stop.
type syncer interface {
	Sync() error
}

var _ Index = (*sdquery.ShardedIndex)(nil)
var _ segmenter = (*sdquery.ShardedIndex)(nil)
var _ compactioner = (*sdquery.ShardedIndex)(nil)

// Option configures a Server.
type Option func(*config)

type config struct {
	window     time.Duration
	maxBatch   int
	queueDepth int
	executors  int
	reqTimeout time.Duration
	writeLimit int
	batchLimit int
	cacheOn    bool
	cacheCap   int
	loader     func(path string) (Index, error)
	loadOpts   []sdquery.SDOption

	followInterval time.Duration // follower poll cadence (follower.go)
	promoteWALDir  string        // where a promoted follower opens its WAL (promote.go)
}

// WithCoalesceWindow sets how long the admission layer holds the first
// query of a batch open for company (default 500µs). 0 still batches
// whatever is instantaneously queued without waiting; negative disables
// coalescing entirely — every /v1/topk runs its own TopKContext call.
func WithCoalesceWindow(d time.Duration) Option { return func(c *config) { c.window = d } }

// WithMaxBatch caps the queries per coalesced batch (default 64).
func WithMaxBatch(n int) Option { return func(c *config) { c.maxBatch = n } }

// WithQueueDepth sets the admission queue capacity for /v1/topk (default
// 1024). A full queue is the backpressure signal: requests are answered
// 429 + Retry-After immediately.
func WithQueueDepth(n int) Option { return func(c *config) { c.queueDepth = n } }

// WithExecutors sets how many coalesced batches may execute concurrently —
// the /v1/topk concurrency limit (default GOMAXPROCS).
func WithExecutors(n int) Option { return func(c *config) { c.executors = n } }

// WithRequestTimeout sets the per-request deadline enforced through the
// engine's context plumbing (default 0 = none). A timed-out request
// answers 503, and the engine work behind it is cancelled
// mid-aggregation: directly on the uncoalesced paths, and on the
// coalesced path once every request sharing the batch has expired (one
// request's deadline must not kill its coalesced neighbors). stats=true
// queries run uncancellable (TopKWithStats carries no context).
func WithRequestTimeout(d time.Duration) Option { return func(c *config) { c.reqTimeout = d } }

// WithWriteConcurrency bounds concurrent /v1/insert + DELETE handlers
// (default 64); excess writes get 429.
func WithWriteConcurrency(n int) Option { return func(c *config) { c.writeLimit = n } }

// WithBatchConcurrency bounds concurrent /v1/batch handlers and stats=true
// /v1/topk queries (default 4) — both run their own full fan-out outside
// the coalescer, so a few in flight saturate the pool.
func WithBatchConcurrency(n int) Option { return func(c *config) { c.batchLimit = n } }

// WithResultCache enables the hot-query result cache (default off). Cached
// /v1/topk answers are keyed on the canonical query encoding and versioned
// by (swap generation, index epoch), so a hit is byte-identical to what the
// current index would answer and any write or swap invalidates implicitly —
// see cache.go. Admission is gated by a HeavyKeeper top-k frequency sketch:
// only queries ranking among the hottest WithCacheCapacity keys are stored,
// so scan-like cold traffic cannot thrash the hot set.
func WithResultCache(on bool) Option { return func(c *config) { c.cacheOn = on } }

// WithCacheCapacity bounds the result cache to the n hottest queries
// (default 1024). Implies nothing about memory precisely — entries are
// whole response bodies — but k=10-ish answers are ~300 bytes, so the
// default is a few hundred KB at saturation.
func WithCacheCapacity(n int) Option { return func(c *config) { c.cacheCap = n } }

// WithLoader replaces how /v1/admin/swap turns a path into an Index. The
// default opens the file and loads whichever persisted index kind it holds
// (sdquery.Load), applying the options given to WithLoadOptions.
func WithLoader(f func(path string) (Index, error)) Option { return func(c *config) { c.loader = f } }

// WithLoadOptions sets the sdquery options the default swap loader applies
// (runtime knobs: scheduler, plan cache, memtable size, workers).
func WithLoadOptions(opts ...sdquery.SDOption) Option {
	return func(c *config) { c.loadOpts = append([]sdquery.SDOption(nil), opts...) }
}

// indexBox wraps the Index interface value for atomic publication, caching
// the dimensionality so request decoding never pays Roles()'s defensive
// copy. Every request path that decodes a query against a box must also
// execute against that same box (the coalescer carries it through pending)
// — a swap between decode and execute must never run a query validated for
// one index against another with different dimensions.
type indexBox struct {
	idx  Index
	dims int
	// gen is the box's publication generation, unique per server across
	// swaps. Epochs are only comparable within one Index value (a swapped-in
	// index restarts its own counter), so the result cache versions entries
	// by the (gen, epoch) pair.
	gen uint64
}

func (s *Server) newBox(idx Index) *indexBox {
	return &indexBox{idx: idx, dims: len(idx.Roles()), gen: s.genCtr.Add(1)}
}

// Server serves SD-Queries over HTTP. Create with New, mount Handler on any
// http.Server (or use ListenAndServe/Serve), and stop with Shutdown.
type Server struct {
	cfg    config
	box    atomic.Pointer[indexBox]
	genCtr atomic.Uint64
	mux    *http.ServeMux
	co     *coalescer
	met    *metrics
	cache  *resultCache // nil unless WithResultCache(true)

	// serverID is the random half of the replication source token (repl.go);
	// repl is non-nil exactly on followers (follower.go) and makes the write
	// endpoints answer 503 + leader hint. It is an atomic pointer because the
	// role changes at runtime: promotion clears it, demotion installs a fresh
	// followerState (promote.go).
	serverID string
	repl     atomic.Pointer[followerState]

	// gen is the node's cluster generation — the fencing token of the
	// promotion protocol. It only moves forward, and only through the fenced
	// admin endpoints; a write stamped with any other generation is refused,
	// which is what keeps a deposed leader from accepting traffic a newer
	// generation already owns.
	gen atomic.Uint64

	writeSem chan struct{}
	batchSem chan struct{}

	// ownsIndex marks an index the server built itself (NewFollower's
	// bootstrap, and every index the role machinery swaps in after it), which
	// Close must therefore release. A promoted ex-follower keeps owning its
	// index even though repl is nil.
	ownsIndex atomic.Bool

	swapMu   sync.Mutex // serializes /v1/admin/swap and promote/demote
	draining atomic.Bool

	hsMu sync.Mutex
	hs   *http.Server
}

// New builds a Server over idx. The server owns no listener until
// ListenAndServe/Serve; Handler can be mounted anywhere (httptest included).
func New(idx Index, opts ...Option) *Server {
	cfg := config{
		window:     500 * time.Microsecond,
		maxBatch:   64,
		queueDepth: 1024,
		executors:  runtime.GOMAXPROCS(0),
		writeLimit: 64,
		batchLimit: 4,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.maxBatch < 1 {
		cfg.maxBatch = 1
	}
	if cfg.queueDepth < 1 {
		cfg.queueDepth = 1
	}
	if cfg.executors < 1 {
		cfg.executors = 1
	}
	if cfg.writeLimit < 1 {
		cfg.writeLimit = 1
	}
	if cfg.batchLimit < 1 {
		cfg.batchLimit = 1
	}
	if cfg.cacheCap < 1 {
		cfg.cacheCap = 1024
	}
	s := &Server{
		cfg:      cfg,
		met:      &metrics{start: time.Now()},
		serverID: newServerID(),
		writeSem: make(chan struct{}, cfg.writeLimit),
		batchSem: make(chan struct{}, cfg.batchLimit),
	}
	if cfg.loader == nil {
		s.cfg.loader = defaultLoader(cfg.loadOpts)
	}
	if cfg.cacheOn {
		s.cache = newResultCache(s.cfg.cacheCap)
	}
	s.box.Store(s.newBox(idx))
	if cfg.window >= 0 {
		s.co = newCoalescer(s.met, cfg.window, cfg.maxBatch, cfg.queueDepth, cfg.executors)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/topk", s.handleTopK)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/insert", s.handleInsert)
	mux.HandleFunc("DELETE /v1/points/{id}", s.handleRemove)
	mux.HandleFunc("POST /v1/admin/swap", s.handleSwap)
	mux.HandleFunc("POST /v1/admin/promote", s.handlePromote)
	mux.HandleFunc("POST /v1/admin/demote", s.handleDemote)
	mux.HandleFunc("GET /v1/repl/manifest", s.handleReplManifest)
	mux.HandleFunc("GET /v1/repl/segment", s.handleReplSegment)
	mux.HandleFunc("GET /v1/repl/wal", s.handleReplWAL)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /statz", s.handleStatz)
	s.mux = mux
	return s
}

// Index returns the currently served index (one atomic load).
func (s *Server) Index() Index { return s.box.Load().idx }

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Statz returns the current diagnostic snapshot (what GET /statz serves).
func (s *Server) Statz() Statz {
	idx := s.Index()
	st := s.met.statz(idx, s.cache)
	st.Role = "leader"
	if lv, ok := idx.(lsnVectorer); ok {
		st.ReplLSNs = lv.ShardLSNs()
	}
	if t, ok := idx.(totaler); ok {
		st.IndexIDSpace = t.Total()
	}
	st.Generation = s.gen.Load()
	if f := s.repl.Load(); f != nil {
		st.Role = "follower"
		st.Repl = &ReplStatz{
			Leader:           f.leaderURL,
			LagRecords:       f.lag.Load(),
			LastPullUnixNano: f.lastPull.Load(),
			Pulls:            f.pulls.Load(),
			PullErrors:       f.pullErrs.Load(),
			Bootstraps:       f.bootstraps.Load(),
		}
	}
	return st
}

// requestCtx applies the configured per-request deadline.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.reqTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.cfg.reqTimeout)
}

// statusClientClosedRequest is nginx's non-standard 499: the client went
// away before the response was written. It is bookkeeping, not a server
// failure — metrics count it separately from errors, so a wave of impatient
// clients (or a load balancer trimming its connection pool) cannot trip an
// error-rate alert on a perfectly healthy server.
const statusClientClosedRequest = 499

// statusFor maps handler errors to HTTP statuses: backpressure → 429;
// server-side deadline, drain, and a failed write-ahead log → 503; client
// cancellation → 499; everything else (validation, role mismatches) → 400.
// DeadlineExceeded is checked before Canceled: a request can carry both
// (client gone AND deadline passed), and blaming the server's own timeout
// is the conservative choice there.
func statusFor(err error) int {
	switch {
	case errors.Is(err, errQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, errDraining),
		errors.Is(err, sdquery.ErrWAL):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	default:
		return http.StatusBadRequest
	}
}

// walDegraded reports whether the serving index's write-ahead log has
// failed stickily (and with what), which makes the server read-only:
// mutations would either be lost on crash or are already rejected by the
// engine, so the write handlers refuse them up front with 503 and Retry
// semantics are left to the operator (the state does not clear without a
// reopen).
func (s *Server) walDegraded() (sdquery.WALStats, bool) {
	if ws, ok := s.Index().(walStater); ok {
		st := ws.WALStats()
		return st, st.Err != nil
	}
	return sdquery.WALStats{}, false
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	status := http.StatusOK
	defer func() { s.met.observe(epTopK, time.Since(t0), status) }()

	body, err := readBody(w, r)
	if err != nil {
		status = http.StatusBadRequest
		writeError(w, status, err)
		return
	}
	box := s.box.Load()
	idx := box.idx
	q, wantStats, err := decodeQuery(body, box.dims)
	if err != nil {
		status = http.StatusBadRequest
		writeError(w, status, err)
		return
	}
	if s.repl.Load() != nil {
		// A follower labels every answer with the LSN vector of the snapshot
		// that produced it, read BEFORE the answer is computed (including the
		// cache lookup) so concurrent replication can only make the label
		// under-report freshness — a router comparing it against a write's
		// ack vector then errs toward "too stale", never "fresh enough" when
		// it isn't. Leaders skip the header on reads: they are definitionally
		// fresh, and the read path stays allocation-clean.
		setReplLSNs(w, idx)
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()

	if wantStats {
		// Stats-enabled queries need per-query counters, so they bypass the
		// coalescer (their counters feed the /metrics engine totals) — but
		// not backpressure: they share /v1/batch's concurrency limit, since
		// each runs its own uncoalesced, uncancellable fan-out.
		select {
		case s.batchSem <- struct{}{}:
			defer func() { <-s.batchSem }()
		default:
			status = http.StatusTooManyRequests
			writeError(w, status, fmt.Errorf("serve: stats-query concurrency limit reached"))
			return
		}
		res, st, err := idx.TopKWithStats(q)
		if err != nil {
			status = statusFor(err)
			writeError(w, status, err)
			return
		}
		s.met.statQueries.Add(1)
		s.met.fetched.Add(uint64(st.Fetched))
		s.met.scored.Add(uint64(st.Scored))
		s.met.planHits.Add(uint64(st.PlanCacheHits))
		writeJSON(w, http.StatusOK, topkResponse{Results: wireResults(res), Stats: wireQueryStats(st)})
		return
	}

	// Cached fast path: a hit writes the stored body straight out — no
	// coalescer queue, no engine work, no marshaling, no allocation.
	var key []byte
	var kb *[]byte
	var epoch uint64
	if s.cache != nil {
		kb = s.cache.getBuf()
		key = appendQueryKey((*kb)[:0], q)
		// Read the epoch BEFORE executing. If it reads the same after the
		// answer is computed, no insert/remove/compaction published in
		// between (epochs strictly increase), so the body is exactly this
		// epoch's answer and is safe to cache under it.
		epoch = box.idx.Epoch()
		if body, ok := s.cache.get(key, box.gen, epoch); ok {
			s.met.cacheHits.Add(1)
			*kb = key
			s.cache.putBuf(kb)
			writeRawJSON(w, http.StatusOK, body)
			return
		}
		s.met.cacheMisses.Add(1)
		defer func() { *kb = key; s.cache.putBuf(kb) }()
	}

	var res []sdquery.Result
	if s.co != nil {
		res, err = s.co.do(ctx, box, q)
	} else {
		res, err = box.idx.TopKContext(ctx, q)
	}
	if err != nil {
		status = statusFor(err)
		writeError(w, status, err)
		return
	}
	body, merr := marshalBody(topkResponse{Results: wireResults(res)})
	if merr != nil {
		status = http.StatusInternalServerError
		http.Error(w, `{"error":"encode response"}`, status)
		return
	}
	if s.cache != nil {
		// Store only if the world held still while we computed: the same box
		// is still published and its epoch is unchanged. Anything else — a
		// swap, a write, a compaction mid-query — and the body may reflect a
		// snapshot the current (gen, epoch) pair no longer describes, so it
		// is served once and not cached.
		if s.box.Load() == box && box.idx.Epoch() == epoch {
			if !s.cache.put(key, box.gen, epoch, body) {
				s.met.cacheRejects.Add(1)
			}
		} else {
			s.met.cacheRejects.Add(1)
		}
	}
	writeRawJSON(w, http.StatusOK, body)
}

// ProbeCache reports whether q would be answered from the result cache
// right now, exercising the exact hit path (key encode, pooled buffer,
// lookup, version check) minus HTTP. The probe feeds the admission sketch
// like any lookup but does not move the hit/miss counters — it exists so
// the bench harness can measure hit-path allocations in-process.
func (s *Server) ProbeCache(q sdquery.Query) bool {
	if s.cache == nil {
		return false
	}
	box := s.box.Load()
	kb := s.cache.getBuf()
	key := appendQueryKey((*kb)[:0], q)
	_, ok := s.cache.get(key, box.gen, box.idx.Epoch())
	*kb = key
	s.cache.putBuf(kb)
	return ok
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	status := http.StatusOK
	defer func() { s.met.observe(epBatch, time.Since(t0), status) }()

	select {
	case s.batchSem <- struct{}{}:
		defer func() { <-s.batchSem }()
	default:
		status = http.StatusTooManyRequests
		writeError(w, status, fmt.Errorf("serve: batch concurrency limit reached"))
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		status = http.StatusBadRequest
		writeError(w, status, err)
		return
	}
	var wb wireBatch
	if err := strictUnmarshal(body, &wb); err != nil {
		status = http.StatusBadRequest
		writeError(w, status, err)
		return
	}
	if len(wb.Queries) == 0 {
		status = http.StatusBadRequest
		writeError(w, status, fmt.Errorf("batch has no queries"))
		return
	}
	box := s.box.Load()
	queries := make([]sdquery.Query, len(wb.Queries))
	for i := range wb.Queries {
		q, err := wb.Queries[i].toQuery(box.dims)
		if err != nil {
			status = http.StatusBadRequest
			writeError(w, status, fmt.Errorf("query %d: %w", i, err))
			return
		}
		queries[i] = q
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	out, err := box.idx.BatchTopKContext(ctx, queries)
	if err != nil {
		status = statusFor(err)
		writeError(w, status, err)
		return
	}
	resp := batchResponse{Results: make([][]wireResult, len(out))}
	for i, res := range out {
		resp.Results[i] = wireResults(res)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleInsert answers 200 only once the insert is committed per the
// index's durability contract: on a WithWAL index, Insert returns after the
// mutation's log record is acknowledged under the configured sync policy
// (fsynced under SyncAlways; OS-buffered under SyncInterval/SyncNever), so
// a 200 means the point survives any crash the policy covers. A failed
// write-ahead log answers 503 — immediately once the failure is sticky, or
// on the triggering request itself (whose mutation was NOT acknowledged) —
// and the server stays read-only until the index is reopened.
func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	status := http.StatusOK
	defer func() { s.met.observe(epInsert, time.Since(t0), status) }()

	select {
	case s.writeSem <- struct{}{}:
		defer func() { <-s.writeSem }()
	default:
		status = http.StatusTooManyRequests
		writeError(w, status, fmt.Errorf("serve: write concurrency limit reached"))
		return
	}
	if status = s.refuseFollowerWrite(w); status != http.StatusOK {
		return
	}
	if status = s.refuseFencedWrite(w, r); status != http.StatusOK {
		return
	}
	if st, bad := s.walDegraded(); bad {
		status = http.StatusServiceUnavailable
		writeError(w, status, fmt.Errorf("serve: index is read-only: %w", st.Err))
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		status = http.StatusBadRequest
		writeError(w, status, err)
		return
	}
	var wi wireInsert
	if err := strictUnmarshal(body, &wi); err != nil {
		status = http.StatusBadRequest
		writeError(w, status, err)
		return
	}
	idx := s.Index()
	if wi.ID != nil {
		status = s.insertWithID(w, idx, *wi.ID, wi.Point)
		return
	}
	id, err := idx.Insert(wi.Point)
	if err != nil {
		status = statusFor(err)
		writeError(w, status, err)
		return
	}
	// The ack's LSN vector is read AFTER the insert committed, so it is a
	// position at which the write is certainly visible (over-reporting is
	// safe on the write side: it only makes a router demand fresher
	// replicas than strictly needed).
	setReplLSNs(w, idx)
	writeJSON(w, http.StatusOK, insertResponse{ID: id})
}

// insertWithID handles an insert carrying a caller-assigned global ID — the
// distributed-writer path (cmd/sdrouter assigns cluster-unique ascending
// IDs). The ID makes retries after ambiguous failures provably idempotent:
// if the ID is already taken by the identical point, this very write already
// committed and the duplicate acks 200 exactly like the original; if it is
// taken by a different point, two writers collided and the 409 is a real
// error, never silently absorbed. Returns the status for the metrics defer.
func (s *Server) insertWithID(w http.ResponseWriter, idx Index, id int, point []float64) int {
	ii, ok := idx.(idInserter)
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: index does not accept caller-assigned ids"))
		return http.StatusBadRequest
	}
	if id < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: id must be non-negative, got %d", id))
		return http.StatusBadRequest
	}
	err := ii.InsertWithID(id, point)
	if errors.Is(err, sdquery.ErrIDExists) {
		if p, found := ii.PointByID(id); found && pointsEqual(p, point) {
			setReplLSNs(w, idx)
			writeJSON(w, http.StatusOK, insertResponse{ID: id})
			return http.StatusOK
		}
		writeError(w, http.StatusConflict, fmt.Errorf("serve: id %d already holds a different point", id))
		return http.StatusConflict
	}
	if err != nil {
		status := statusFor(err)
		writeError(w, status, err)
		return status
	}
	setReplLSNs(w, idx)
	writeJSON(w, http.StatusOK, insertResponse{ID: id})
	return http.StatusOK
}

// refuseFollowerWrite answers a mutation on a follower with 503, Retry-After,
// and the leader's address, returning the status to record (200 = proceed).
func (s *Server) refuseFollowerWrite(w http.ResponseWriter) int {
	f := s.repl.Load()
	if f == nil {
		return http.StatusOK
	}
	w.Header().Set(headerLeader, f.leaderURL)
	writeError(w, http.StatusServiceUnavailable,
		fmt.Errorf("serve: node is a read-only follower; write to the leader at %s", f.leaderURL))
	return http.StatusServiceUnavailable
}

// refuseFencedWrite enforces the promotion fence on the write path. A router
// stamps every write with the generation of the topology it routed under
// (X-SD-Generation); a node at any other generation refuses it with 503 —
// the request was routed under a topology that no longer describes this
// node, and the router's retry will land on the generation's real leader.
// Requests without the header (single-node deployments, direct clients)
// pass untouched. Whatever the verdict, the response carries the node's own
// generation so the caller learns where the cluster actually is.
func (s *Server) refuseFencedWrite(w http.ResponseWriter, r *http.Request) int {
	cur := s.gen.Load()
	w.Header().Set(headerGeneration, strconv.FormatUint(cur, 10))
	h := r.Header.Get(headerGeneration)
	if h == "" {
		return http.StatusOK
	}
	g, err := strconv.ParseUint(h, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: %s header %q: %w", headerGeneration, h, err))
		return http.StatusBadRequest
	}
	if g != cur {
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("serve: write fenced: request carries generation %d, node is at %d", g, cur))
		return http.StatusServiceUnavailable
	}
	return http.StatusOK
}

func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	status := http.StatusOK
	defer func() { s.met.observe(epRemove, time.Since(t0), status) }()

	select {
	case s.writeSem <- struct{}{}:
		defer func() { <-s.writeSem }()
	default:
		status = http.StatusTooManyRequests
		writeError(w, status, fmt.Errorf("serve: write concurrency limit reached"))
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		status = http.StatusBadRequest
		writeError(w, status, fmt.Errorf("point id %q: %w", r.PathValue("id"), err))
		return
	}
	if status = s.refuseFollowerWrite(w); status != http.StatusOK {
		return
	}
	if status = s.refuseFencedWrite(w, r); status != http.StatusOK {
		return
	}
	if st, bad := s.walDegraded(); bad {
		status = http.StatusServiceUnavailable
		writeError(w, status, fmt.Errorf("serve: index is read-only: %w", st.Err))
		return
	}
	// Like inserts, removes answer 200 only after their tombstone commits
	// per the sync policy; RemoveDurable surfaces the log verdict where the
	// bool-only Remove would swallow it.
	idx := s.Index()
	var removed bool
	if dr, ok := idx.(durableRemover); ok {
		removed, err = dr.RemoveDurable(id)
		if err != nil {
			status = statusFor(err)
			writeError(w, status, err)
			return
		}
	} else {
		removed = idx.Remove(id)
	}
	if !removed {
		removed = s.tombstoned(idx, id)
	}
	setReplLSNs(w, idx)
	writeJSON(w, http.StatusOK, removeResponse{ID: id, Removed: removed})
}

// tombstoned reports whether id holds a removed-but-still-located row — the
// ack-idempotency shield for deletes, mirroring the insert duplicate-200:
// a retried DELETE whose first attempt committed (ack lost in transit) finds
// the tombstone and answers removed:true exactly like the original, instead
// of reporting failure for a delete that succeeded. The probe is sound
// because rows never resurrect: "locatable but not live" can only mean
// tombstoned. An ID physically reclaimed by compaction locates nowhere and
// keeps reporting removed:false — that window is the log-retention horizon,
// same as replication's.
func (s *Server) tombstoned(idx Index, id int) bool {
	ii, ok := idx.(idInserter)
	if !ok {
		return false
	}
	_, found := ii.PointByID(id)
	return found
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		// Draining is transient and bounded by the drain timeout, so unlike
		// the sticky WAL degradation this 503 tells clients when to come back
		// — same contract as the 429 and follower-write paths.
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	// Role and generation ride as headers so a router's health probe learns
	// both without a second request — the demotion driver keys off a healthy
	// node claiming leadership under a stale generation.
	f := s.repl.Load()
	role := "leader"
	if f != nil {
		role = "follower"
	}
	w.Header().Set(headerRole, role)
	w.Header().Set(headerGeneration, strconv.FormatUint(s.gen.Load(), 10))
	if _, bad := s.walDegraded(); bad {
		// Still alive — reads answer fine — so the liveness probe stays 200;
		// the body tells operators (and the readiness tier, if it reads it)
		// that writes are being refused.
		fmt.Fprintln(w, "degraded: write-ahead log failed; serving read-only")
		return
	}
	if f != nil {
		fmt.Fprintf(w, "ok\nrole: follower\nleader: %s\nrepl_lag_records: %d\n", f.leaderURL, f.lag.Load())
		return
	}
	fmt.Fprintln(w, "ok\nrole: leader")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.writeProm(w, s.Index(), s.cache)
	s.writeReplProm(w)
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Statz())
}

// Serve accepts connections on l until Shutdown (or Close on the listener).
func (s *Server) Serve(l net.Listener) error {
	hs := &http.Server{Handler: s.mux}
	s.hsMu.Lock()
	s.hs = hs
	s.hsMu.Unlock()
	err := hs.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown drains gracefully: /healthz flips to 503 (so load balancers stop
// routing), the HTTP server stops accepting and waits for in-flight
// handlers up to ctx's deadline, then the coalescer stops. Once the last
// write handler has returned, the serving index's write-ahead log (if any)
// is force-fsynced so acknowledged mutations survive power loss even under
// SyncInterval/SyncNever. The index itself is left open — it belongs to
// the caller.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	var err error
	s.hsMu.Lock()
	hs := s.hs
	s.hsMu.Unlock()
	if hs != nil {
		err = hs.Shutdown(ctx)
	}
	s.Close()
	if sy, ok := s.Index().(syncer); ok {
		if serr := sy.Sync(); err == nil {
			err = serr
		}
	}
	return err
}

// Close releases the server's goroutines (the coalescer, and on a follower
// the replication pull loop) without waiting for in-flight HTTP requests;
// use Shutdown for graceful drain. Safe after Shutdown; idempotent. A
// follower also closes its index — NewFollower built it, so nobody else
// holds it.
func (s *Server) Close() {
	if f := s.repl.Load(); f != nil {
		f.stop()
	}
	if s.ownsIndex.Load() {
		if c, ok := s.Index().(closer); ok {
			c.Close()
		}
	}
	if s.co != nil {
		s.co.close()
	}
}

// strictUnmarshal is json.Unmarshal with unknown fields and trailing data
// rejected.
func strictUnmarshal(data []byte, v any) error {
	if err := strictDecode(data, v); err != nil {
		return fmt.Errorf("decode request: %w", err)
	}
	return nil
}
