package serve

// heavyKeeper is a HeavyKeeper-style top-k frequency sketch: the admission
// filter in front of the result cache. Production top-k traffic is
// Zipf-skewed — a small set of hot queries dominates — and the cache should
// spend its bounded capacity only on that set, not on the long cold tail
// that would otherwise thrash it one-hit-wonder by one-hit-wonder.
//
// Structure (following the HeavyKeeper design: fingerprint buckets,
// exponential-decay counters, min-heap of the current top k):
//
//   - A depth×width array of buckets, each holding a 32-bit key fingerprint
//     and a counter. An arriving key hashes to one bucket per row. A bucket
//     owned by the key increments; an empty bucket is claimed; a bucket
//     owned by a different key decays — its counter decrements with
//     probability decayBase^-count, so entrenched counts are hard to tear
//     down (a hot key's count survives cold collisions) while small counts
//     turn over quickly (cold keys cannot squat).
//   - A min-heap of the k keys with the largest estimated counts, with a
//     hash→position index for O(1) membership tests. A key whose estimate
//     beats the heap minimum expels that minimum; the eviction callback
//     lets the cache drop the expelled key's entry, which keeps the cache a
//     subset of the current heavy hitters.
//
// The estimate for a key is the maximum matching-bucket count across rows.
// All state mutation happens under the owning cache's lock; the decay coin
// flips come from a deterministic splitmix64 stream, so tests are
// reproducible.

const (
	// hkDepth is the number of bucket rows; each key gets one bucket per row.
	hkDepth = 4
	// hkDecayBase sets the decay probability decayBase^-count for a
	// colliding bucket. 1.08 is the HeavyKeeper paper's recommendation:
	// count 1 decays with p≈0.93, count 50 with p≈0.02, count 256 with
	// p≈3e-9 (treated as never below).
	hkDecayBase = 1.08
	// hkDecayTableSize bounds the precomputed decay-probability table;
	// counts at or beyond it never decay.
	hkDecayTableSize = 256
)

type hkBucket struct {
	fp    uint32 // key fingerprint (high 32 bits of the key hash)
	count uint32
}

// hkEntry is one tracked heavy hitter in the min-heap.
type hkEntry struct {
	hash  uint64
	key   string // the full cache key, for the eviction callback
	count uint32
}

type heavyKeeper struct {
	width   uint64
	buckets []hkBucket // hkDepth rows × width, row-major
	decay   []float64  // decay[c] = hkDecayBase^-c
	rng     uint64     // splitmix64 state for decay coin flips

	k       int
	heap    []hkEntry      // min-heap by count
	pos     map[uint64]int // key hash → heap position
	onEvict func(key string)
}

// newHeavyKeeper tracks the k hottest keys. onEvict (may be nil) fires when
// a tracked key is expelled by a hotter one.
func newHeavyKeeper(k int, onEvict func(string)) *heavyKeeper {
	if k < 1 {
		k = 1
	}
	// ~8 buckets per tracked key per row keeps fingerprint collisions rare
	// at the scale the heap cares about; power-of-two width makes the
	// row-index computation a mask.
	width := uint64(64)
	for width < uint64(k)*8 {
		width *= 2
	}
	hk := &heavyKeeper{
		width:   width,
		buckets: make([]hkBucket, hkDepth*int(width)),
		decay:   make([]float64, hkDecayTableSize),
		rng:     0x9e3779b97f4a7c15,
		k:       k,
		heap:    make([]hkEntry, 0, k),
		pos:     make(map[uint64]int, k),
		onEvict: onEvict,
	}
	p := 1.0
	for c := range hk.decay {
		hk.decay[c] = p
		p /= hkDecayBase
	}
	return hk
}

// splitmix64 is the finalizer of the splitmix64 generator: a strong 64-bit
// mix used both to derive per-row bucket indexes and to advance the decay
// RNG.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// add records one access of the key identified by hash and returns its new
// estimated count. key is the full cache key; it is copied to a string only
// if the key newly enters the top-k heap, so the established-hot path
// allocates nothing.
func (hk *heavyKeeper) add(hash uint64, key []byte) uint32 {
	fp := uint32(hash >> 32)
	var est uint32
	for d := uint64(0); d < hkDepth; d++ {
		b := &hk.buckets[d*hk.width+(splitmix64(hash^d)&(hk.width-1))]
		switch {
		case b.count == 0:
			b.fp, b.count = fp, 1
			if est < 1 {
				est = 1
			}
		case b.fp == fp:
			if b.count < ^uint32(0) {
				b.count++
			}
			if est < b.count {
				est = b.count
			}
		default:
			if hk.decayRoll(b.count) {
				b.count--
				if b.count == 0 {
					b.fp, b.count = fp, 1
					if est < 1 {
						est = 1
					}
				}
			}
		}
	}
	hk.offer(hash, key, est)
	return est
}

// decayRoll flips the exponential-decay coin for a colliding bucket.
func (hk *heavyKeeper) decayRoll(count uint32) bool {
	if count >= hkDecayTableSize {
		return false
	}
	hk.rng = splitmix64(hk.rng)
	return float64(hk.rng>>11)/(1<<53) < hk.decay[count]
}

// hot reports whether the key is currently one of the tracked top-k heavy
// hitters — the cache's admission test.
func (hk *heavyKeeper) hot(hash uint64) bool {
	_, ok := hk.pos[hash]
	return ok
}

// min returns the smallest tracked count (0 when the heap has room).
func (hk *heavyKeeper) min() uint32 {
	if len(hk.heap) < hk.k {
		return 0
	}
	return hk.heap[0].count
}

// offer updates the key's standing in the top-k heap after an add.
func (hk *heavyKeeper) offer(hash uint64, key []byte, est uint32) {
	if i, ok := hk.pos[hash]; ok {
		if est > hk.heap[i].count {
			hk.heap[i].count = est
			hk.siftDown(i)
		}
		return
	}
	if len(hk.heap) < hk.k {
		hk.heap = append(hk.heap, hkEntry{hash: hash, key: string(key), count: est})
		hk.pos[hash] = len(hk.heap) - 1
		hk.siftUp(len(hk.heap) - 1)
		return
	}
	if est <= hk.heap[0].count {
		return
	}
	expelled := hk.heap[0]
	delete(hk.pos, expelled.hash)
	hk.heap[0] = hkEntry{hash: hash, key: string(key), count: est}
	hk.pos[hash] = 0
	hk.siftDown(0)
	if hk.onEvict != nil {
		hk.onEvict(expelled.key)
	}
}

func (hk *heavyKeeper) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if hk.heap[parent].count <= hk.heap[i].count {
			return
		}
		hk.swap(i, parent)
		i = parent
	}
}

func (hk *heavyKeeper) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(hk.heap) && hk.heap[l].count < hk.heap[small].count {
			small = l
		}
		if r < len(hk.heap) && hk.heap[r].count < hk.heap[small].count {
			small = r
		}
		if small == i {
			return
		}
		hk.swap(i, small)
		i = small
	}
}

func (hk *heavyKeeper) swap(i, j int) {
	hk.heap[i], hk.heap[j] = hk.heap[j], hk.heap[i]
	hk.pos[hk.heap[i].hash] = i
	hk.pos[hk.heap[j].hash] = j
}
