package serve

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	sdquery "repro"
)

// Replication endpoints — the leader half of follower replication. A leader
// exports its state over three read-only endpoints; a follower (follower.go)
// pulls them:
//
//	GET /v1/repl/manifest            JSON: stream format, source token,
//	                                 shard count, dims, per-shard LSN vector
//	GET /v1/repl/segment?shard=N     shard N's snapshot (checkpoint format)
//	GET /v1/repl/wal?shard=N&from=L  shard N's WAL records with LSN > L
//	                                 (log-record framing); 410 Gone when the
//	                                 range was retired by a checkpoint
//
// The streams are exactly the formats the engine already trusts with
// durability (sdquery Save / WAL records), so replication adds no new
// parser on either side. The leader keeps no per-follower state: a
// follower names its own cursor in every /wal request, and a cursor that
// falls off the retained log gets 410 and re-bootstraps from fresh
// snapshots — the Redis-PSYNC/InstallSnapshot recovery shape.
//
// The manifest's source token is a random per-process ID plus the serving
// box's swap generation. It changes whenever the leader restarts or swaps
// indexes — exactly the events after which a follower's LSN cursor may
// describe a different history — and a token change tells the follower to
// throw its state away and re-bootstrap rather than risk a silent fork.

const replFormat = "sd-repl/v1"

// replWALChunkBytes caps the record bytes one /v1/repl/wal response carries.
// It bounds the leader's per-request buffer (built under the engine's
// checkpoint lock); a follower further behind than one chunk catches up
// over successive pulls (follower.go tails until it reaches the manifest
// position).
const replWALChunkBytes = 4 << 20

// Replication headers. X-SD-Repl-Lsns carries a comma-separated per-shard
// LSN vector: on follower /v1/topk responses it states the freshness of the
// snapshot that answered (computed before the answer, so it never
// over-reports), and on leader write acks it states a position at which the
// write is visible (computed after, so it never under-reports). The router
// compares the two vectors componentwise to decide whether a replica may
// answer a read-your-writes query.
const (
	headerReplLSNs   = "X-SD-Repl-Lsns"
	headerReplSource = "X-SD-Repl-Source"
	headerLSNLast    = "X-SD-Lsn-Last"
	headerLSNLeader  = "X-SD-Lsn-Leader"
	headerRecords    = "X-SD-Records"
	headerLeader     = "X-SD-Leader"

	// Role and generation ride on /healthz responses (both) and on every
	// write response (generation): the router's health probe learns a node's
	// role and fencing position for free, and its write path validates that
	// an ack came from the generation it routed under (promote.go).
	headerRole       = "X-SD-Role"
	headerGeneration = "X-SD-Generation"
)

// replSource is the index capability the leader endpoints need — implemented
// by ShardedIndex and SDIndex (via singleIndex embedding).
type replSource interface {
	ReplShards() int
	ShardLSNs() []uint64
	ReplSnapshot(si int, w io.Writer) (uint64, error)
	ReplWALTail(si int, from uint64, w io.Writer, maxBytes int) (sdquery.ReplTail, error)
}

// replApplier is the follower side: apply a leader's WAL stream to a shard.
type replApplier interface {
	ShardLSNs() []uint64
	ApplyReplWAL(si int, r io.Reader) (int, error)
}

// lsnVectorer is the minimal freshness surface (a strict subset of
// replSource, split out so header emission needs only one assertion).
type lsnVectorer interface {
	ShardLSNs() []uint64
}

// idInserter accepts caller-assigned global IDs — the surface a distributed
// writer needs for provably idempotent insert retries.
type idInserter interface {
	InsertWithID(id int, p []float64) error
	PointByID(id int) ([]float64, bool)
}

// totaler reports the size of the global ID space (indexed IDs are below it).
type totaler interface {
	Total() int
}

// replManifest is the /v1/repl/manifest document.
type replManifest struct {
	Format string   `json:"format"`
	Source string   `json:"source"`
	Shards int      `json:"shards"`
	Dims   int      `json:"dims"`
	LSNs   []uint64 `json:"lsns"`
}

// newServerID draws the random half of the replication source token.
func newServerID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to a fixed token; source checks degrade to gen-only, which
		// still catches swaps (just not process restarts). Never happens on
		// any real platform.
		return "srv"
	}
	return hex.EncodeToString(b[:])
}

// replToken names the (process, swap generation) the served streams belong
// to. Any restart or swap changes it.
func (s *Server) replToken(box *indexBox) string {
	return s.serverID + "-" + strconv.FormatUint(box.gen, 10)
}

var errNoRepl = errors.New("serve: index does not export replication streams")

func (s *Server) handleReplManifest(w http.ResponseWriter, r *http.Request) {
	box := s.box.Load()
	rs, ok := box.idx.(replSource)
	if !ok {
		writeError(w, http.StatusNotFound, errNoRepl)
		return
	}
	writeJSON(w, http.StatusOK, replManifest{
		Format: replFormat,
		Source: s.replToken(box),
		Shards: rs.ReplShards(),
		Dims:   box.dims,
		LSNs:   rs.ShardLSNs(),
	})
}

// replShard parses and bounds the shard query parameter.
func replShard(r *http.Request, rs replSource) (int, error) {
	si, err := strconv.Atoi(r.URL.Query().Get("shard"))
	if err != nil {
		return 0, fmt.Errorf("serve: shard parameter: %w", err)
	}
	if si < 0 || si >= rs.ReplShards() {
		return 0, fmt.Errorf("serve: shard %d of %d", si, rs.ReplShards())
	}
	return si, nil
}

func (s *Server) handleReplSegment(w http.ResponseWriter, r *http.Request) {
	box := s.box.Load()
	rs, ok := box.idx.(replSource)
	if !ok {
		writeError(w, http.StatusNotFound, errNoRepl)
		return
	}
	si, err := replShard(r, rs)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(headerReplSource, s.replToken(box))
	if _, err := rs.ReplSnapshot(si, w); err != nil {
		// Bytes are already on the wire; the only honest failure signal left
		// is killing the connection so the follower sees a short stream (which
		// Load rejects) instead of a clean EOF.
		panic(http.ErrAbortHandler)
	}
}

func (s *Server) handleReplWAL(w http.ResponseWriter, r *http.Request) {
	box := s.box.Load()
	rs, ok := box.idx.(replSource)
	if !ok {
		writeError(w, http.StatusNotFound, errNoRepl)
		return
	}
	si, err := replShard(r, rs)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: from parameter: %w", err))
		return
	}
	// Buffer the tail before writing headers: the gap verdict and the reach
	// of the stream are only known after the scan, and both belong in the
	// response head. The export is capped per response (a far-behind cursor
	// is caught up over several polls), so the buffer — which is built while
	// the engine holds its checkpoint lock — stays bounded no matter how
	// much log is retained.
	var buf bytes.Buffer
	tail, err := rs.ReplWALTail(si, from, &buf, replWALChunkBytes)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if tail.Gap {
		writeError(w, http.StatusGone, fmt.Errorf(
			"serve: wal tail after %d is not retained (leader at %d); re-bootstrap from a snapshot", from, tail.LeaderLSN))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(headerReplSource, s.replToken(box))
	w.Header().Set(headerLSNLast, strconv.FormatUint(tail.Last, 10))
	w.Header().Set(headerLSNLeader, strconv.FormatUint(tail.LeaderLSN, 10))
	w.Header().Set(headerRecords, strconv.Itoa(tail.Records))
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

// lsnCSV renders an LSN vector for the X-SD-Repl-Lsns header.
func lsnCSV(lsns []uint64) string {
	var b strings.Builder
	for i, v := range lsns {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(v, 10))
	}
	return b.String()
}

// setReplLSNs emits the freshness header when the index exposes a vector.
func setReplLSNs(w http.ResponseWriter, idx Index) {
	if lv, ok := idx.(lsnVectorer); ok {
		w.Header().Set(headerReplLSNs, lsnCSV(lv.ShardLSNs()))
	}
}

// pointsEqual compares coordinates bit-for-bit. The router retries an insert
// with the identical JSON body, and JSON float decoding is deterministic, so
// a retried duplicate matches exactly; anything else is a genuine collision.
func pointsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
