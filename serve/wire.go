package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"

	sdquery "repro"
)

// JSON wire format. The binary Save/Load format (package sdquery) persists
// whole indexes; this is the per-request query format the HTTP API speaks.
//
// A query:
//
//	{"point": [0.1, 0.9], "k": 5,
//	 "roles": ["repulsive", "attractive"],   // or "r"/"a"/"i"
//	 "weights": [1, 0.5],                    // optional; default 1 per active dim
//	 "stats": true}                          // optional; include work counters
//
// A top-k response:
//
//	{"results": [{"id": 17, "score": 0.42}, ...],
//	 "stats": {"fetched": 1890, ...}}        // only when requested
//
// Scores are encoded with encoding/json's shortest-roundtrip float
// formatting, so a response is byte-identical to encoding the results of a
// direct ShardedIndex.TopK call — the property the e2e golden tests pin.
// Unknown fields are rejected: a typo'd knob fails loudly with a 400
// instead of being silently ignored.

// maxBodyBytes bounds every request body read; oversized requests fail with
// 400 before any decode work happens.
const maxBodyBytes = 8 << 20

type wireQuery struct {
	Point   []float64 `json:"point"`
	K       int       `json:"k"`
	Roles   []string  `json:"roles"`
	Weights []float64 `json:"weights"`
	Stats   bool      `json:"stats"`
}

type wireBatch struct {
	Queries []wireQuery `json:"queries"`
}

type wireInsert struct {
	Point []float64 `json:"point"`
	// ID optionally assigns the point's global ID (must be above every ID the
	// index has seen). Distributed writers use it to make insert retries
	// idempotent — see Server.insertWithID. Absent, the index assigns.
	ID *int `json:"id,omitempty"`
}

type wireSwap struct {
	Path string `json:"path"`
}

type wireResult struct {
	ID    int     `json:"id"`
	Score float64 `json:"score"`
}

type wireStats struct {
	Subproblems   int `json:"subproblems"`
	Segments      int `json:"segments"`
	Fetched       int `json:"fetched"`
	Scored        int `json:"scored"`
	Rounds        int `json:"rounds"`
	PlanCacheHits int `json:"plan_cache_hits"`
}

type topkResponse struct {
	Results []wireResult `json:"results"`
	Stats   *wireStats   `json:"stats,omitempty"`
}

type batchResponse struct {
	Results [][]wireResult `json:"results"`
}

type insertResponse struct {
	ID int `json:"id"`
}

type removeResponse struct {
	ID      int  `json:"id"`
	Removed bool `json:"removed"`
}

type swapResponse struct {
	Swapped bool `json:"swapped"`
	Points  int  `json:"points"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// parseRole maps a wire role name to the engine's Role. Both the long names
// and the one-letter forms cmd/sdquery uses are accepted, case-insensitively.
func parseRole(s string) (sdquery.Role, error) {
	switch strings.ToLower(s) {
	case "attractive", "a":
		return sdquery.Attractive, nil
	case "repulsive", "r":
		return sdquery.Repulsive, nil
	case "ignored", "i":
		return sdquery.Ignored, nil
	}
	return 0, fmt.Errorf("role %q: use attractive/a, repulsive/r, or ignored/i", s)
}

// decodeQuery parses and validates one wire query against the serving
// index's dimensionality. Validation here is deliberately complete — k,
// lengths, role names, weight domain, at least one active dimension — so a
// malformed request gets its own 400 and can never poison the coalesced
// batch it would have ridden in (the engine re-validates, but by then the
// query shares a BatchTopK call with innocent neighbors). This function is
// the fuzz target FuzzDecodeQuery.
func decodeQuery(data []byte, dims int) (sdquery.Query, bool, error) {
	var wq wireQuery
	if err := strictDecode(data, &wq); err != nil {
		return sdquery.Query{}, false, fmt.Errorf("decode query: %w", err)
	}
	q, err := wq.toQuery(dims)
	return q, wq.Stats, err
}

// strictDecode decodes exactly one JSON value with unknown fields rejected;
// trailing non-whitespace data (a concatenated second body, a framing bug)
// fails instead of being silently dropped.
func strictDecode(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after the JSON body")
	}
	return nil
}

// toQuery validates and converts a decoded wire query.
func (wq *wireQuery) toQuery(dims int) (sdquery.Query, error) {
	var q sdquery.Query
	if wq.K < 1 {
		return q, fmt.Errorf("k must be ≥ 1, got %d", wq.K)
	}
	if len(wq.Point) != dims {
		return q, fmt.Errorf("point has %d dims, index has %d", len(wq.Point), dims)
	}
	if len(wq.Roles) != dims {
		return q, fmt.Errorf("%d roles for %d dims", len(wq.Roles), dims)
	}
	roles := make([]sdquery.Role, dims)
	active := 0
	for i, s := range wq.Roles {
		r, err := parseRole(s)
		if err != nil {
			return q, fmt.Errorf("dimension %d: %w", i, err)
		}
		roles[i] = r
		if r != sdquery.Ignored {
			active++
		}
	}
	if active == 0 {
		return q, fmt.Errorf("no attractive or repulsive dimensions")
	}
	for i, v := range wq.Point {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return q, fmt.Errorf("dimension %d of the point is %v", i, v)
		}
	}
	weights := wq.Weights
	if weights == nil {
		weights = make([]float64, dims)
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != dims {
		return q, fmt.Errorf("%d weights for %d dims", len(weights), dims)
	}
	for i, w := range weights {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return q, fmt.Errorf("dimension %d has invalid weight %v", i, w)
		}
	}
	return sdquery.Query{Point: wq.Point, K: wq.K, Roles: roles, Weights: weights}, nil
}

// wireResults converts engine results to the wire shape.
func wireResults(res []sdquery.Result) []wireResult {
	out := make([]wireResult, len(res))
	for i, r := range res {
		out[i] = wireResult{ID: r.ID, Score: r.Score}
	}
	return out
}

func wireQueryStats(st sdquery.QueryStats) *wireStats {
	return &wireStats{
		Subproblems:   st.Subproblems,
		Segments:      st.Segments,
		Fetched:       st.Fetched,
		Scored:        st.Scored,
		Rounds:        st.Rounds,
		PlanCacheHits: st.PlanCacheHits,
	}
}

// readBody slurps a bounded request body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	data, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, fmt.Errorf("read body: %w", err)
	}
	return data, nil
}

// marshalBody encodes v into exactly the bytes writeJSON puts on the wire —
// the JSON document plus its trailing newline. The result cache stores
// these bytes verbatim, which is what makes a cache hit trivially
// byte-identical to a freshly computed response.
func marshalBody(v any) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

// writeRawJSON writes a pre-marshaled body (from marshalBody, possibly via
// the result cache).
func writeRawJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// writeJSON encodes v with a status code. Encoding into a buffer first keeps
// a marshal failure from emitting a half-written 200.
func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := marshalBody(v)
	if err != nil {
		http.Error(w, `{"error":"encode response"}`, http.StatusInternalServerError)
		return
	}
	writeRawJSON(w, status, body)
}

func writeError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
