package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	sdquery "repro"
	"repro/internal/dataset"
)

// walTestIndex builds a WAL-backed sharded index — the leader shape.
func walTestIndex(t *testing.T, n int, seed int64) *sdquery.ShardedIndex {
	t.Helper()
	data := dataset.Generate(dataset.Uniform, n, len(testRoles()), seed)
	idx, err := sdquery.NewShardedIndex(data, testRoles(),
		sdquery.WithShards(2), sdquery.WithWAL(t.TempDir()), sdquery.WithSyncPolicy(sdquery.SyncNever))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(idx.Close)
	return idx
}

// waitCaughtUp polls until the follower's applied LSN vector covers the
// leader's (componentwise), or fails the test.
func waitCaughtUp(t *testing.T, leader, follower *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		ls := leader.Statz().ReplLSNs
		fs := follower.Statz().ReplLSNs
		ok := len(ls) > 0 && len(ls) == len(fs)
		for i := range ls {
			ok = ok && fs[i] >= ls[i]
		}
		if ok {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("follower never caught up: leader %v follower %v",
		leader.Statz().ReplLSNs, follower.Statz().ReplLSNs)
}

// TestFollowerE2E runs the whole replication loop over real HTTP: bootstrap,
// live WAL tailing, byte-identical reads, role surfacing, and the follower's
// write refusal.
func TestFollowerE2E(t *testing.T) {
	idx := walTestIndex(t, 2_000, 11)
	leader := New(idx)
	defer leader.Close()
	lts := httptest.NewServer(leader.Handler())
	defer lts.Close()

	follower, err := NewFollower(lts.URL, WithFollowInterval(10*time.Millisecond))
	if err != nil {
		t.Fatalf("NewFollower: %v", err)
	}
	defer follower.Close()
	fts := httptest.NewServer(follower.Handler())
	defer fts.Close()

	// Churn on the leader after the follower bootstrapped: inserts and a
	// remove the follower must pick up through the WAL tail.
	rows := dataset.Generate(dataset.Uniform, 50, len(testRoles()), 12)
	for _, row := range rows {
		b, _ := json.Marshal(map[string]any{"point": row})
		if status, body := post(t, lts.Client(), lts.URL+"/v1/insert", b); status != http.StatusOK {
			t.Fatalf("leader insert: %d %s", status, body)
		}
	}
	req, _ := http.NewRequest(http.MethodDelete, lts.URL+"/v1/points/3", nil)
	if resp, err := lts.Client().Do(req); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("leader remove: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}

	waitCaughtUp(t, leader, follower)

	// Every read must be byte-identical across the two nodes.
	for _, q := range testQueries(25, 13) {
		body := queryBody(t, q)
		ls, lb := post(t, lts.Client(), lts.URL+"/v1/topk", body)
		fsStatus, fb := post(t, fts.Client(), fts.URL+"/v1/topk", body)
		if ls != http.StatusOK || fsStatus != http.StatusOK {
			t.Fatalf("topk status leader %d follower %d", ls, fsStatus)
		}
		if !bytes.Equal(lb, fb) {
			t.Fatalf("follower answer diverged:\nleader   %s\nfollower %s", lb, fb)
		}
	}

	// Follower responses carry the freshness vector; leader reads do not.
	resp, err := fts.Client().Post(fts.URL+"/v1/topk", "application/json", bytes.NewReader(queryBody(t, testQueries(1, 14)[0])))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get(headerReplLSNs) == "" {
		t.Fatal("follower topk response lacks the X-SD-Repl-Lsns header")
	}

	// Role surfacing: healthz and statz on both nodes.
	hresp, err := fts.Client().Get(fts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hb bytes.Buffer
	hb.ReadFrom(hresp.Body)
	hresp.Body.Close()
	if !strings.Contains(hb.String(), "role: follower") || !strings.Contains(hb.String(), "repl_lag_records") {
		t.Fatalf("follower healthz: %q", hb.String())
	}
	if got := leader.Statz().Role; got != "leader" {
		t.Fatalf("leader role %q", got)
	}
	fstz := follower.Statz()
	if fstz.Role != "follower" || fstz.Repl == nil || fstz.Repl.Leader != lts.URL {
		t.Fatalf("follower statz: %+v", fstz)
	}

	// Writes on the follower are refused with 503 + Retry-After + leader hint.
	b, _ := json.Marshal(map[string]any{"point": rows[0]})
	wresp, err := fts.Client().Post(fts.URL+"/v1/insert", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	wresp.Body.Close()
	if wresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower insert status %d, want 503", wresp.StatusCode)
	}
	if wresp.Header.Get("Retry-After") == "" || wresp.Header.Get(headerLeader) != lts.URL {
		t.Fatalf("follower 503 lacks Retry-After/X-SD-Leader: %v", wresp.Header)
	}

	// /metrics reports the role and the lag series.
	mresp, err := fts.Client().Get(fts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mb bytes.Buffer
	mb.ReadFrom(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{`sdserver_role{role="follower"} 1`, "sdserver_repl_lag_records", "sdserver_repl_lsn{shard=\"0\"}"} {
		if !strings.Contains(mb.String(), want) {
			t.Fatalf("follower metrics lack %q", want)
		}
	}
}

// TestFollowerRebootstrapOnSourceChange kills the leader server (losing its
// process identity) and brings a new one up on a fresh copy of the data at
// the same address — the follower must detect the source-token change and
// re-bootstrap instead of applying a foreign WAL tail.
func TestFollowerRebootstrapOnSourceChange(t *testing.T) {
	idx := walTestIndex(t, 1_000, 21)
	leader := New(idx)
	// The handler is swapped mid-test while the follower's pull loop keeps
	// requests in flight, so the indirection must be atomic.
	var handler atomic.Value
	handler.Store(leader.Handler())
	lts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	}))

	follower, err := NewFollower(lts.URL, WithFollowInterval(10*time.Millisecond))
	if err != nil {
		t.Fatalf("NewFollower: %v", err)
	}
	defer follower.Close()
	waitCaughtUp(t, leader, follower)

	// Replace the leader behind the same URL: new server, new index, new
	// (divergent) history. httptest can't rebind the port, so route the old
	// listener's handler to the new server instead — to the follower this is
	// exactly a restarted leader at its configured address.
	idx2 := walTestIndex(t, 1_500, 22)
	leader2 := New(idx2)
	defer leader2.Close()
	handler.Store(leader2.Handler())
	leader.Close()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st := follower.Statz(); st.Repl != nil && st.Repl.Bootstraps > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := follower.Statz(); st.Repl == nil || st.Repl.Bootstraps == 0 {
		t.Fatalf("follower never re-bootstrapped: %+v", st.Repl)
	}
	waitCaughtUp(t, leader2, follower)

	q := testQueries(5, 23)
	fts := httptest.NewServer(follower.Handler())
	defer fts.Close()
	for _, query := range q {
		body := queryBody(t, query)
		_, lb := post(t, lts.Client(), lts.URL+"/v1/topk", body)
		_, fb := post(t, fts.Client(), fts.URL+"/v1/topk", body)
		if !bytes.Equal(lb, fb) {
			t.Fatalf("post-rebootstrap divergence:\nleader   %s\nfollower %s", lb, fb)
		}
	}
	lts.Close()
}

// TestInsertWithIDIdempotent pins the distributed-writer contract: the same
// {id, point} body acks 200 twice (the retry is a provable duplicate), and
// the same id with a different point is a 409 conflict.
func TestInsertWithIDIdempotent(t *testing.T) {
	idx := walTestIndex(t, 500, 31)
	s := New(idx)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := idx.Total() + 3 // a hole before it exercises the sparse path
	point := []float64{0.25, 0.5, 0.75, 1.0}
	body, _ := json.Marshal(map[string]any{"id": id, "point": point})
	for try := 0; try < 2; try++ {
		status, out := post(t, ts.Client(), ts.URL+"/v1/insert", body)
		if status != http.StatusOK {
			t.Fatalf("try %d: status %d %s", try, status, out)
		}
		var ir insertResponse
		if err := json.Unmarshal(out, &ir); err != nil || ir.ID != id {
			t.Fatalf("try %d: ack %s err %v", try, out, err)
		}
	}
	other, _ := json.Marshal(map[string]any{"id": id, "point": []float64{9, 9, 9, 9}})
	if status, _ := post(t, ts.Client(), ts.URL+"/v1/insert", other); status != http.StatusConflict {
		t.Fatalf("conflicting insert status %d, want 409", status)
	}
	// The occupied slot serves the original coordinates.
	if p, ok := idx.PointByID(id); !ok || !pointsEqual(p, point) {
		t.Fatalf("PointByID(%d) = %v %v", id, p, ok)
	}
}

// TestReplEndpointContract covers the leader endpoints directly: manifest
// shape, segment source stamping, and the 410 gap verdict.
func TestReplEndpointContract(t *testing.T) {
	idx := walTestIndex(t, 800, 41)
	s := New(idx)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/repl/manifest")
	if err != nil {
		t.Fatal(err)
	}
	var m replManifest
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.Format != replFormat || m.Shards != 2 || m.Dims != 4 || len(m.LSNs) != 2 || m.Source == "" {
		t.Fatalf("manifest %+v", m)
	}

	sresp, err := ts.Client().Get(ts.URL + "/v1/repl/segment?shard=1")
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK || sresp.Header.Get(headerReplSource) != m.Source {
		t.Fatalf("segment: %d source %q want %q", sresp.StatusCode, sresp.Header.Get(headerReplSource), m.Source)
	}
	if bad, err := ts.Client().Get(ts.URL + "/v1/repl/segment?shard=7"); err != nil || bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range shard: %v %v", bad.StatusCode, err)
	} else {
		bad.Body.Close()
	}

	// A cursor ahead of the leader is a gap → 410 Gone.
	gone, err := ts.Client().Get(fmt.Sprintf("%s/v1/repl/wal?shard=0&from=%d", ts.URL, m.LSNs[0]+100))
	if err != nil {
		t.Fatal(err)
	}
	gone.Body.Close()
	if gone.StatusCode != http.StatusGone {
		t.Fatalf("gapped tail status %d, want 410", gone.StatusCode)
	}
}
