package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	sdquery "repro"
)

// Request coalescing: the admission layer between /v1/topk handlers and the
// engine. Concurrently-arriving single queries are gathered into one
// ShardedIndex.BatchTopK call, which pipelines the whole (query × shard)
// grid over the index's worker pool with pooled per-task buffers — the PR 2
// batch path — instead of paying one independent fan-out per request. Under
// load the server therefore executes a few wide batches per scheduling
// quantum rather than hundreds of narrow ones.
//
// Shape: handlers enqueue pending requests on a bounded queue (a full queue
// is the backpressure signal — the handler answers 429 with Retry-After
// without blocking). One collector goroutine drains the queue into batches,
// closing a batch when it reaches maxBatch queries or when the coalescing
// window expires, whichever is first; a window of 0 batches whatever is
// instantaneously queued without waiting. Completed batches are handed to a
// small pool of executor goroutines — the per-endpoint concurrency limit
// for /v1/topk — which grab the server's current index (one atomic load, so
// an admin swap never tears a batch) and run BatchTopK.
//
// Failure isolation: BatchTopK aborts a whole batch on its first error, so
// an executor that sees a batch error falls back to per-query TopK calls —
// each request then gets exactly its own result or its own error, and one
// bad query (say, a role flip the decoder cannot see) never poisons the
// neighbors it was coalesced with.

// errQueueFull is the backpressure signal: the admission queue is at
// capacity. Handlers translate it into 429 + Retry-After.
var errQueueFull = errors.New("serve: query queue full")

// errDraining is returned to requests abandoned in the queue at shutdown.
var errDraining = errors.New("serve: server draining")

// pending is one in-flight coalesced request. box is the indexBox the
// handler decoded the query against: the executor runs the query against
// exactly that box, never against whatever box is current at execution
// time — a swap between decode and execution must not run a query
// validated for one index's dimensionality against a different index.
// The done channel is buffered so the executor's completion signal never
// blocks on a handler that gave up (request context expired); such orphans
// are simply left to the GC instead of returning to the pool.
type pending struct {
	ctx  context.Context
	box  *indexBox
	q    sdquery.Query
	res  []sdquery.Result
	err  error
	done chan struct{}
}

type coalescer struct {
	queue    chan *pending
	jobs     chan []*pending
	window   time.Duration
	maxBatch int
	met      *metrics

	pool      sync.Pool // *pending
	batchPool sync.Pool // *[]*pending

	quit      chan struct{}
	closeOnce sync.Once
	colWg     sync.WaitGroup
	execWg    sync.WaitGroup
}

func newCoalescer(met *metrics, window time.Duration, maxBatch, queueDepth, executors int) *coalescer {
	co := &coalescer{
		queue:    make(chan *pending, queueDepth),
		jobs:     make(chan []*pending),
		window:   window,
		maxBatch: maxBatch,
		met:      met,
		quit:     make(chan struct{}),
	}
	co.colWg.Add(1)
	go co.collect()
	for i := 0; i < executors; i++ {
		co.execWg.Add(1)
		go co.execute()
	}
	return co
}

// do submits one query, pinned to the box it was decoded against, and
// blocks until its batch executes or ctx expires.
func (co *coalescer) do(ctx context.Context, box *indexBox, q sdquery.Query) ([]sdquery.Result, error) {
	p, _ := co.pool.Get().(*pending)
	if p == nil {
		p = &pending{done: make(chan struct{}, 1)}
	}
	p.ctx, p.box, p.q = ctx, box, q
	select {
	case co.queue <- p:
	default:
		p.ctx, p.box, p.q = nil, nil, sdquery.Query{}
		co.pool.Put(p)
		return nil, errQueueFull
	}
	select {
	case <-p.done:
		res, err := p.res, p.err
		p.ctx, p.box, p.q, p.res, p.err = nil, nil, sdquery.Query{}, nil, nil
		co.pool.Put(p)
		return res, err
	case <-ctx.Done():
		// The executor still owns p and will signal into the buffered done
		// channel; p is abandoned to the GC rather than reused.
		return nil, ctx.Err()
	case <-co.quit:
		// The coalescer is shutting down. Requests enqueued before close()
		// are failed by drainQueue, but one enqueued after the collector's
		// final drain would otherwise wait forever (Handler can be mounted
		// on a caller-owned http.Server that outlives Close). p may still
		// be delivered concurrently; it is abandoned, not reused.
		return nil, errDraining
	}
}

// collect is the single batching goroutine: it blocks for the first request
// of a batch, then widens the batch until maxBatch or the window closes.
// One reused timer arms the window per batch (Go 1.23+ timer semantics:
// Stop/Reset need no channel drain), so the admission path allocates
// nothing per batch.
func (co *coalescer) collect() {
	defer co.colWg.Done()
	timer := time.NewTimer(time.Hour)
	timer.Stop()
	for {
		var first *pending
		select {
		case first = <-co.queue:
		case <-co.quit:
			co.drainQueue()
			return
		}
		bp, _ := co.batchPool.Get().(*[]*pending)
		if bp == nil {
			bp = new([]*pending)
		}
		batch := append((*bp)[:0], first)
		if co.window > 0 {
			timer.Reset(co.window)
		windowed:
			for len(batch) < co.maxBatch {
				select {
				case p := <-co.queue:
					batch = append(batch, p)
				case <-timer.C:
					break windowed
				case <-co.quit:
					break windowed
				}
			}
			timer.Stop()
		} else {
		instant:
			for len(batch) < co.maxBatch {
				select {
				case p := <-co.queue:
					batch = append(batch, p)
				default:
					break instant
				}
			}
		}
		*bp = batch
		// Handing the batch off blocks only while every executor is busy —
		// which backs pressure up into the bounded queue and, past that,
		// into 429s. Executors outlive the collector (jobs closes after this
		// goroutine returns), so this send cannot deadlock at shutdown.
		co.jobs <- *bp
	}
}

// drainQueue fails whatever requests are still queued at shutdown. Their
// handlers have typically already given up (HTTP shutdown waits for
// handlers, and do() returns on context expiry), so this is bookkeeping,
// not user-visible behavior.
func (co *coalescer) drainQueue() {
	for {
		select {
		case p := <-co.queue:
			p.err = errDraining
			p.done <- struct{}{}
		default:
			return
		}
	}
}

func (co *coalescer) execute() {
	defer co.execWg.Done()
	for batch := range co.jobs {
		co.run(batch)
	}
}

// queriesPool recycles the per-batch query slice.
var queriesPool = sync.Pool{New: func() any { return new([]sdquery.Query) }}

// run executes one batch and delivers per-request results. Requests are
// grouped by the box each was decoded against, and every group executes
// against its own box's index: under a concurrent swap a batch can straddle
// two boxes, and running the whole batch against either one would execute
// queries validated for the other index's dimensionality against the wrong
// engine. Outside a swap every request shares one box, so the grouping
// degenerates to a single pointer comparison per request.
func (co *coalescer) run(batch []*pending) {
	// Drop requests whose context already expired: their handlers are gone,
	// and the engine shouldn't pay for them.
	live := batch[:0]
	for _, p := range batch {
		if err := p.ctx.Err(); err != nil {
			p.err = err
			p.done <- struct{}{}
			continue
		}
		live = append(live, p)
	}
	for len(live) > 0 {
		box := live[0].box
		n := 0
		for i := range live {
			if live[i].box == box {
				live[n], live[i] = live[i], live[n]
				n++
			}
		}
		co.runGroup(box, live[:n])
		live = live[n:]
	}
	co.putBatch(batch)
}

// runGroup executes one same-box group of live requests as a single engine
// batch.
func (co *coalescer) runGroup(box *indexBox, live []*pending) {
	qp := queriesPool.Get().(*[]sdquery.Query)
	queries := (*qp)[:0]
	for _, p := range live {
		queries = append(queries, p.q)
	}
	// Cancellation plumbing for the whole batch: the engine work is cut
	// short once EVERY waiter has given up (one request's disconnect must
	// not kill its coalesced neighbors), so a batch of timed-out requests
	// sheds its engine load instead of running to termination. The watcher
	// waits on each context in turn — total wait = max over contexts — and
	// is reaped before the batch slice returns to the pool.
	batchCtx, cancel := context.WithCancel(context.Background())
	stopWatch := make(chan struct{})
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		for _, p := range live {
			select {
			case <-p.ctx.Done():
			case <-stopWatch:
				return
			}
		}
		cancel()
	}()
	out, err := box.idx.BatchTopKContext(batchCtx, queries)
	close(stopWatch)
	<-watcherDone
	cancel()
	if err != nil {
		// Per-query fallback: each request gets its own result or its own
		// error, under its own context — one bad or expired query never
		// poisons the neighbors it was coalesced with. Deliberately NOT
		// counted by observeBatch: these queries executed one at a time,
		// and counting them would let coalesced_batch_mean report healthy
		// batching while every batch was actually falling back (the exact
		// collapse the bench diff gate watches for).
		for _, p := range live {
			p.res, p.err = box.idx.TopKContext(p.ctx, p.q)
			p.done <- struct{}{}
		}
	} else {
		for i, p := range live {
			p.res = out[i]
			p.done <- struct{}{}
		}
		co.met.observeBatch(len(live))
	}
	clear(queries)
	*qp = queries[:0]
	queriesPool.Put(qp)
}

func (co *coalescer) putBatch(batch []*pending) {
	clear(batch)
	bp := batch[:0]
	co.batchPool.Put(&bp)
}

// close stops the coalescer: the collector exits (failing queued strays),
// then the job channel closes and the executors drain what was already
// batched. Idempotent.
func (co *coalescer) close() {
	co.closeOnce.Do(func() {
		close(co.quit)
		co.colWg.Wait()
		close(co.jobs)
		co.execWg.Wait()
	})
}
