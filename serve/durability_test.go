package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	sdquery "repro"
	"repro/internal/dataset"
	"repro/internal/faultfs"
)

// durableTestIndex builds a WAL-backed sharded index over fs (nil = real
// filesystem at dir).
func durableTestIndex(t *testing.T, fs faultfs.FS, dir string, n int, seed int64, opts ...sdquery.SDOption) *sdquery.ShardedIndex {
	t.Helper()
	data := dataset.Generate(dataset.Uniform, n, len(testRoles()), seed)
	all := append([]sdquery.SDOption{
		sdquery.WithShards(2), sdquery.WithWAL(dir), sdquery.WithMemtableSize(32),
	}, opts...)
	if fs != nil {
		all = append(all, sdquery.WithWALFS(fs))
	}
	idx, err := sdquery.NewShardedIndex(data, testRoles(), all...)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func insertPoint(t *testing.T, ts *httptest.Server, row []float64) (int, int) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"point": row})
	if err != nil {
		t.Fatal(err)
	}
	status, out := post(t, ts.Client(), ts.URL+"/v1/insert", body)
	if status != http.StatusOK {
		return status, -1
	}
	var resp struct {
		ID int `json:"id"`
	}
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatalf("insert response %q: %v", out, err)
	}
	return status, resp.ID
}

func deletePoint(t *testing.T, ts *httptest.Server, id int) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/points/%d", ts.URL, id), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

// TestWALDurabilitySemantics pins the write-path durability contract: a 200
// on /v1/insert or DELETE means the mutation committed per the sync policy,
// and a failed log degrades the server to read-only 503s — stickily, with
// /healthz, /metrics, and /statz all reporting the state — while reads keep
// answering.
func TestWALDurabilitySemantics(t *testing.T) {
	fs := faultfs.NewMem()
	idx := durableTestIndex(t, fs, "idx", 500, 31)
	defer idx.Close()
	srv := New(idx)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Healthy: insert commits (group commit fsyncs before the 200).
	row := make([]float64, len(testRoles()))
	fsyncsBefore := fs.Fsyncs()
	status, id := insertPoint(t, ts, row)
	if status != http.StatusOK {
		t.Fatalf("insert: status %d", status)
	}
	if id != 500 {
		t.Fatalf("insert id %d, want 500", id)
	}
	if fs.Fsyncs() == fsyncsBefore {
		t.Fatal("200 answered without an fsync under SyncAlways")
	}
	if status, _ := deletePoint(t, ts, id); status != http.StatusOK {
		t.Fatalf("delete: status %d", status)
	}

	// Degrade: fsync fails, the triggering write answers 503 and was not
	// acknowledged.
	fs.SetSyncErr(errors.New("disk gone"))
	if status, _ := insertPoint(t, ts, row); status != http.StatusServiceUnavailable {
		t.Fatalf("insert under fsync failure: status %d, want 503", status)
	}
	// Sticky: later writes fail fast (the pre-check path), reads still work.
	if status, _ := insertPoint(t, ts, row); status != http.StatusServiceUnavailable {
		t.Fatalf("second insert: status %d, want 503", status)
	}
	if status, body := deletePoint(t, ts, 0); status != http.StatusServiceUnavailable {
		t.Fatalf("delete while degraded: status %d (%s), want 503", status, body)
	}
	q := testQueries(1, 32)[0]
	if status, body := post(t, ts.Client(), ts.URL+"/v1/topk", queryBody(t, q)); status != http.StatusOK {
		t.Fatalf("read while degraded: status %d: %s", status, body)
	}

	// Health and telemetry reflect the degradation.
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hb bytes.Buffer
	hb.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(hb.String(), "degraded") {
		t.Fatalf("healthz while degraded: %d %q", resp.StatusCode, hb.String())
	}
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mb bytes.Buffer
	mb.ReadFrom(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(mb.String(), "sdserver_wal_degraded 1") {
		t.Fatal("metrics do not report sdserver_wal_degraded 1")
	}
	if !strings.Contains(mb.String(), "sdserver_wal_appends_total") {
		t.Fatal("metrics do not expose sdserver_wal_appends_total")
	}
	st := srv.Statz()
	if !st.WALEnabled || !st.WALDegraded || st.WALError == "" {
		t.Fatalf("statz does not reflect degradation: %+v", st)
	}
	if st.WALAppends == 0 || st.WALFsyncs == 0 {
		t.Fatalf("statz wal counters empty: %+v", st)
	}
}

// TestWALShutdownSyncs: Shutdown force-fsyncs the index's log, so a server
// running SyncNever survives power loss after a clean drain.
func TestWALShutdownSyncs(t *testing.T) {
	fs := faultfs.NewMem()
	idx := durableTestIndex(t, fs, "idx", 100, 33,
		sdquery.WithSyncPolicy(sdquery.SyncNever))
	defer idx.Close()
	srv := New(idx)
	ts := httptest.NewServer(srv.Handler())

	row := make([]float64, len(testRoles()))
	status, id := insertPoint(t, ts, row)
	if status != http.StatusOK {
		t.Fatalf("insert: status %d", status)
	}
	ts.Close()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Power loss after the drain: only fsynced bytes survive. The drained
	// log must still hold the acknowledged insert.
	re, err := sdquery.OpenShardedIndex("idx", sdquery.WithWALFS(fs.PowerFailClone()))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 101 {
		t.Fatalf("after drain + power loss: Len = %d, want 101", re.Len())
	}
	if !re.Remove(id) {
		t.Fatalf("acknowledged insert %d lost across drain + power loss", id)
	}
}

// TestWALCrashRecoveryE2E is the end-to-end crash drill: mutate over HTTP
// with the WAL on the real filesystem, hard-drop the process state (no
// drain, no close, no checkpoint), reopen the directory, and require every
// acknowledged mutation present and every answer byte-identical to a fresh
// oracle index holding exactly the acknowledged state.
func TestWALCrashRecoveryE2E(t *testing.T) {
	dir := t.TempDir() + "/idx"
	data := dataset.Generate(dataset.Uniform, 300, len(testRoles()), 41)
	idx, err := sdquery.NewShardedIndex(data, testRoles(),
		sdquery.WithShards(2), sdquery.WithWAL(dir), sdquery.WithMemtableSize(32))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(idx)
	ts := httptest.NewServer(srv.Handler())

	rows := append([][]float64(nil), data...)
	dead := make([]bool, len(rows))
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 80; i++ {
		if rng.Intn(4) == 0 {
			victim := rng.Intn(len(rows))
			status, body := deletePoint(t, ts, victim)
			if status != http.StatusOK {
				t.Fatalf("delete %d: status %d: %s", victim, status, body)
			}
			var dr struct {
				ID      int  `json:"id"`
				Removed bool `json:"removed"`
			}
			if err := json.Unmarshal(body, &dr); err != nil {
				t.Fatal(err)
			}
			if dr.Removed != !dead[victim] {
				t.Fatalf("delete %d: removed=%v with oracle dead=%v", victim, dr.Removed, dead[victim])
			}
			dead[victim] = true
			continue
		}
		row := make([]float64, len(testRoles()))
		for d := range row {
			row[d] = rng.Float64()
		}
		status, id := insertPoint(t, ts, row)
		if status != http.StatusOK {
			t.Fatalf("insert %d: status %d", i, status)
		}
		if id != len(rows) {
			t.Fatalf("insert id %d, want %d", id, len(rows))
		}
		rows = append(rows, row)
		dead = append(dead, false)
	}

	// Hard drop: tear down the HTTP front end but neither drain nor close
	// the index — its WAL handle is abandoned exactly as a killed process
	// would leave it. SyncAlways acknowledged each 200 only after its group
	// commit, so recovery owes every one of them.
	ts.Close()
	srv.Close()

	re, err := sdquery.OpenShardedIndex(dir)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer re.Close()

	// Oracle: a fresh, log-less index holding exactly the acknowledged
	// state.
	oracle, err := sdquery.NewShardedIndex(rows, testRoles(), sdquery.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	for id, d := range dead {
		if d {
			oracle.Remove(id)
		}
	}
	if re.Len() != oracle.Len() {
		t.Fatalf("recovered Len = %d, oracle %d", re.Len(), oracle.Len())
	}
	for qi, q := range testQueries(12, 43) {
		got, err := re.TopK(q)
		if err != nil {
			t.Fatalf("query %d on recovered index: %v", qi, err)
		}
		want, err := oracle.TopK(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, oracle %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d rank %d: recovered %+v, oracle %+v", qi, i, got[i], want[i])
			}
		}
	}
}
