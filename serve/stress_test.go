package serve

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	sdquery "repro"
	"repro/internal/dataset"
)

// TestServerConcurrentStress mirrors the engine-level stress pattern
// (concurrency_test.go) one layer up: N goroutine clients hammer /v1/topk
// and /v1/insert (plus deletes) over HTTP while a tiny memtable keeps the
// background compactor continuously sealing and folding underneath, and one
// admin swap replaces the whole index mid-flight. Run under -race in CI
// this is the memory-model check for the serving layer: the coalescer's
// hand-offs, the atomic index pointer, and the metrics counters all under
// fire at once. In-flight answers can interleave with writes arbitrarily,
// so responses are shape-checked only; after every goroutine joins, the
// server must answer exactly like a direct call on its current index.
func TestServerConcurrentStress(t *testing.T) {
	roles := testRoles()
	data := dataset.Generate(dataset.Uniform, 2_000, len(roles), 50)
	idx, err := sdquery.NewShardedIndex(data, roles,
		sdquery.WithShards(4), sdquery.WithMemtableSize(16))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()

	// The swap target: a second index persisted to disk, loaded by the
	// admin endpoint mid-stress. Small memtable there too, so the post-swap
	// index churns just as hard.
	next, err := sdquery.NewShardedIndex(
		dataset.Generate(dataset.Uniform, 1_500, len(roles), 51), roles,
		sdquery.WithShards(2), sdquery.WithMemtableSize(16))
	if err != nil {
		t.Fatal(err)
	}
	defer next.Close()
	path := filepath.Join(t.TempDir(), "next.sdx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := next.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	srv := New(idx,
		WithQueueDepth(4096),
		WithCoalesceWindow(time.Millisecond),
		WithLoadOptions(sdquery.WithMemtableSize(16)))
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	newBody := func(rng *rand.Rand) []byte {
		point := make([]float64, len(roles))
		weights := make([]float64, len(roles))
		names := make([]string, len(roles))
		for d := range point {
			point[d] = rng.Float64()
			weights[d] = rng.Float64()
			names[d] = roles[d].String()
		}
		b, err := json.Marshal(map[string]any{
			"point": point, "k": 1 + rng.Intn(10), "roles": names, "weights": weights,
		})
		if err != nil {
			panic(err)
		}
		return b
	}

	const steps = 120
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	for w := 0; w < 4; w++ { // query clients
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(600 + w)))
			for i := 0; i < steps; i++ {
				status, out, err := postE(ts.Client(), ts.URL+"/v1/topk", newBody(rng))
				if err != nil {
					fail(err)
					return
				}
				if status != http.StatusOK {
					fail(fmt.Errorf("query client %d step %d: status %d: %s", w, i, status, out))
					return
				}
				var tr topkResponse
				if err := json.Unmarshal(out, &tr); err != nil {
					fail(fmt.Errorf("query client %d step %d: torn body %q: %w", w, i, out, err))
					return
				}
				for j := 1; j < len(tr.Results); j++ {
					if tr.Results[j].Score > tr.Results[j-1].Score {
						fail(fmt.Errorf("query client %d step %d: unsorted answer %s", w, i, out))
						return
					}
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ { // insert clients (steady churn pressure)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(700 + w)))
			for i := 0; i < steps; i++ {
				point := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
				b, _ := json.Marshal(map[string]any{"point": point})
				status, out, err := postE(ts.Client(), ts.URL+"/v1/insert", b)
				if err != nil {
					fail(err)
					return
				}
				if status != http.StatusOK && status != http.StatusTooManyRequests {
					fail(fmt.Errorf("insert client %d step %d: status %d: %s", w, i, status, out))
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() { // delete client: random ids, some live, some not
		defer wg.Done()
		rng := rand.New(rand.NewSource(800))
		client := ts.Client()
		for i := 0; i < steps; i++ {
			req, err := http.NewRequest(http.MethodDelete,
				fmt.Sprintf("%s/v1/points/%d", ts.URL, rng.Intn(2_500)), nil)
			if err != nil {
				fail(err)
				return
			}
			resp, err := client.Do(req)
			if err != nil {
				fail(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
				fail(fmt.Errorf("delete step %d: status %d", i, resp.StatusCode))
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // one swap mid-flight
		defer wg.Done()
		time.Sleep(20 * time.Millisecond)
		b, _ := json.Marshal(wireSwap{Path: path})
		status, out, err := postE(ts.Client(), ts.URL+"/v1/admin/swap", b)
		if err != nil {
			fail(err)
			return
		}
		if status != http.StatusOK {
			fail(fmt.Errorf("swap: status %d: %s", status, out))
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Post-stress: the server must answer exactly like a direct call on its
	// current (post-swap, post-churn) index.
	cur := srv.Index()
	rng := rand.New(rand.NewSource(900))
	for i := 0; i < 10; i++ {
		body := newBody(rng)
		q, _, err := decodeQuery(body, len(cur.Roles()))
		if err != nil {
			t.Fatal(err)
		}
		direct, err := cur.TopK(q)
		if err != nil {
			t.Fatal(err)
		}
		status, out := post(t, ts.Client(), ts.URL+"/v1/topk", body)
		if status != http.StatusOK {
			t.Fatalf("post-stress query %d: status %d: %s", i, status, out)
		}
		want := goldenBody(t, direct)
		if string(out) != string(want) {
			t.Fatalf("post-stress query %d differs from direct call\ngot  %s\nwant %s", i, out, want)
		}
	}
	if st := srv.Statz(); st.Swaps != 1 {
		t.Fatalf("statz records %d swaps, want 1", st.Swaps)
	}
}
