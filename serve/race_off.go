//go:build !race

package serve

// raceEnabled reports whether the race detector is active; the
// zero-allocation assertions are skipped under -race, whose instrumentation
// allocates on paths the production build does not.
const raceEnabled = false
