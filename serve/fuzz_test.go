package serve

import (
	"bytes"
	"math"
	"sync"
	"testing"

	sdquery "repro"
	"repro/internal/dataset"
)

// FuzzDecodeQuery drives the HTTP request decoder with coverage-guided raw
// bodies: arbitrary JSON (and non-JSON) bytes must never panic, and any
// body the decoder accepts must satisfy every invariant the engine relies
// on — correct lengths, finite non-negative weights, k ≥ 1, at least one
// active role — which the fuzz body then proves by running the decoded
// query end to end against a real index. The seed corpus lives under
// testdata/fuzz/FuzzDecodeQuery; CI runs this target in the fuzz smoke
// alongside FuzzTopK and FuzzTopKChurn.

// fuzzIdx is the shared end-to-end index: decoded queries are executed
// against it, so an invariant the decoder misses surfaces as an engine
// panic under the fuzzer instead of in production.
var fuzzIdx = sync.OnceValue(func() *sdquery.SDIndex {
	roles := []sdquery.Role{sdquery.Repulsive, sdquery.Attractive, sdquery.Repulsive, sdquery.Attractive}
	idx, err := sdquery.NewSDIndex(dataset.Generate(dataset.Uniform, 256, len(roles), 60), roles)
	if err != nil {
		panic(err)
	}
	return idx
})

const fuzzDims = 4

func FuzzDecodeQuery(f *testing.F) {
	f.Add([]byte(`{"point":[0.1,0.2,0.3,0.4],"k":3,"roles":["r","a","r","a"],"weights":[1,0.5,0.25,1]}`))
	f.Add([]byte(`{"point":[0,0,0,0],"k":1,"roles":["repulsive","attractive","ignored","ignored"]}`))
	f.Add([]byte(`{"point":[0.1,0.2,0.3,0.4],"k":0,"roles":["r","a","r","a"]}`))
	f.Add([]byte(`{"point":[0.1,0.2],"k":3,"roles":["r","a"]}`))
	f.Add([]byte(`{"point":[0.1,0.2,0.3,0.4],"k":3,"roles":["r","a","r","sideways"]}`))
	f.Add([]byte(`{"point":[0.1,0.2,0.3,0.4],"k":3,"roles":["r","a","r","a"],"weights":[-1,1,1,1]}`))
	f.Add([]byte(`{"point":[1e308,-1e308,0,0],"k":2,"roles":["r","r","i","i"],"weights":[1e308,1,0,0]}`))
	f.Add([]byte(`{"point":[0.1,0.2,0.3,0.4],"k":3,"roles":["i","i","i","i"]}`))
	f.Add([]byte(`{"point":[0.1,0.2,0.3,0.4],"k":3,"roles":["r","a","r","a"],"stats":true}`))
	f.Add([]byte(`{"point":[0.1,0.2,0.3,0.4],"k":3,"roles":["r","a","r","a"],"extra":1}`))
	f.Add([]byte(`{"queries":[{"point":[0.1,0.2,0.3,0.4],"k":3}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`{"point":[0.1,0.2,0.3,0.4],"k":3,"roles":["r","a","r","a"]} trailing`))
	f.Add([]byte(`{"point":[-0.0,0.2,0.3,0.4],"k":3,"roles":["r","a","r","a"],"weights":[-0.0,1,1,1]}`))
	f.Add([]byte(`{"point":[NaN,0.2,0.3,0.4],"k":3,"roles":["r","a","r","a"]}`))
	f.Add([]byte(`{"point":[1e-323,2.2250738585072014e-308,0.3,0.4],"k":3,"roles":["r","a","r","a"]}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		q, _, err := decodeQuery(body, fuzzDims)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		// Accepted inputs must satisfy the engine's preconditions exactly.
		if q.K < 1 {
			t.Fatalf("decoder accepted k=%d", q.K)
		}
		if len(q.Point) != fuzzDims || len(q.Roles) != fuzzDims || len(q.Weights) != fuzzDims {
			t.Fatalf("decoder accepted mismatched lengths: point %d, roles %d, weights %d",
				len(q.Point), len(q.Roles), len(q.Weights))
		}
		active := 0
		for i := range q.Roles {
			switch q.Roles[i] {
			case sdquery.Attractive, sdquery.Repulsive:
				active++
			case sdquery.Ignored:
			default:
				t.Fatalf("decoder produced unknown role %v", q.Roles[i])
			}
			if math.IsNaN(q.Weights[i]) || math.IsInf(q.Weights[i], 0) || q.Weights[i] < 0 {
				t.Fatalf("decoder accepted weight %v", q.Weights[i])
			}
			if math.IsNaN(q.Point[i]) || math.IsInf(q.Point[i], 0) {
				t.Fatalf("decoder accepted point coordinate %v", q.Point[i])
			}
		}
		if active == 0 {
			t.Fatal("decoder accepted a query with no active dimensions")
		}
		// The cache-key encoder must handle anything the decoder accepts:
		// deterministic bytes, and numerically-equal floats (+0.0 vs -0.0)
		// collapsing to one key, since the result cache would otherwise hold
		// duplicate entries for one logical query.
		key := appendQueryKey(nil, q)
		if !bytes.Equal(key, appendQueryKey(nil, q)) {
			t.Fatal("cache key encoding is not deterministic")
		}
		flipped := sdquery.Query{
			Point:   append([]float64(nil), q.Point...),
			K:       q.K,
			Roles:   q.Roles,
			Weights: append([]float64(nil), q.Weights...),
		}
		for i := range flipped.Point {
			if flipped.Point[i] == 0 {
				flipped.Point[i] = math.Copysign(0, -1)
			}
			if flipped.Weights[i] == 0 {
				flipped.Weights[i] = math.Copysign(0, -1)
			}
		}
		if !bytes.Equal(key, appendQueryKey(nil, flipped)) {
			t.Fatal("±0.0 produced distinct cache keys")
		}
		// End to end: the engine may still reject (build-time role flips are
		// invisible to the decoder) but must never panic on decoder-accepted
		// input.
		if _, err := fuzzIdx().TopK(q); err == nil {
			return
		}
	})
}
