package serve

import (
	"fmt"
	"math/rand"
	"testing"
)

// keyOf builds a distinct synthetic cache key per logical key id.
func hkKey(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }

// TestHeavyKeeperTracksHotKeys drives a skewed stream — a few heavy keys
// inside a storm of one-off keys — and requires every heavy key to be
// tracked as hot at the end while the overwhelming majority of one-offs are
// not. This is the cache-admission property: cold scans cannot claim the
// hot set.
func TestHeavyKeeperTracksHotKeys(t *testing.T) {
	const heavy, capacity = 8, 16
	hk := newHeavyKeeper(capacity, nil)
	rng := rand.New(rand.NewSource(1))
	// Interleave: each round touches every heavy key a few times and a fresh
	// batch of never-repeating keys once each.
	cold := 1 << 20
	for round := 0; round < 400; round++ {
		for h := 0; h < heavy; h++ {
			for rep := 0; rep < 3; rep++ {
				k := hkKey(h)
				hk.add(hashKey(k), k)
			}
		}
		for c := 0; c < 10; c++ {
			cold++
			k := hkKey(cold)
			hk.add(hashKey(k), k)
		}
		_ = rng
	}
	for h := 0; h < heavy; h++ {
		if !hk.hot(hashKey(hkKey(h))) {
			t.Errorf("heavy key %d not tracked as hot", h)
		}
	}
	// The heap holds at most capacity keys, so at least cold-capacity one-off
	// keys must be untracked; spot-check a sample.
	tracked := 0
	for c := 1<<20 + 1; c < 1<<20+200; c++ {
		if hk.hot(hashKey(hkKey(c))) {
			tracked++
		}
	}
	if tracked > capacity {
		t.Errorf("%d one-off keys tracked, want ≤ %d", tracked, capacity)
	}
}

// TestHeavyKeeperEviction pins the heap-expulsion contract: the sketch
// never tracks more than k keys, and every expulsion reports the expelled
// key through the callback exactly once — the hook the cache uses to stay a
// subset of the tracked heavy hitters.
func TestHeavyKeeperEviction(t *testing.T) {
	evicted := make(map[string]int)
	hk := newHeavyKeeper(2, func(key string) { evicted[key]++ })
	// Three keys with strictly increasing frequency: the lightest must be
	// expelled once both heavier keys outrank it.
	counts := []int{3, 30, 300}
	for rep := 0; rep < 300; rep++ {
		for i, n := range counts {
			if rep < n {
				k := hkKey(i)
				hk.add(hashKey(k), k)
			}
		}
	}
	if len(hk.heap) > 2 {
		t.Fatalf("heap holds %d keys, capacity 2", len(hk.heap))
	}
	if !hk.hot(hashKey(hkKey(1))) || !hk.hot(hashKey(hkKey(2))) {
		t.Fatal("the two heaviest keys are not both tracked")
	}
	if hk.hot(hashKey(hkKey(0))) {
		t.Fatal("lightest key still tracked in a full heap of heavier keys")
	}
	if evicted[string(hkKey(0))] == 0 {
		t.Fatal("expulsion of the lightest key never reported")
	}
	// Heap and position index must agree exactly.
	if len(hk.pos) != len(hk.heap) {
		t.Fatalf("pos has %d entries, heap %d", len(hk.pos), len(hk.heap))
	}
	for i, e := range hk.heap {
		if hk.pos[e.hash] != i {
			t.Fatalf("pos[%x]=%d, want %d", e.hash, hk.pos[e.hash], i)
		}
	}
}

// TestHeavyKeeperDeterministic: identical streams produce identical sketch
// state — the decay coin flips come from a fixed-seed generator, not global
// randomness, so admission behavior is reproducible in tests and replays.
func TestHeavyKeeperDeterministic(t *testing.T) {
	run := func() *heavyKeeper {
		hk := newHeavyKeeper(8, nil)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 20000; i++ {
			k := hkKey(rng.Intn(500))
			hk.add(hashKey(k), k)
		}
		return hk
	}
	a, b := run(), run()
	if len(a.heap) != len(b.heap) {
		t.Fatalf("heap sizes differ: %d vs %d", len(a.heap), len(b.heap))
	}
	for i := range a.heap {
		if a.heap[i] != b.heap[i] {
			t.Fatalf("heap[%d] differs: %+v vs %+v", i, a.heap[i], b.heap[i])
		}
	}
	for i := range a.buckets {
		if a.buckets[i] != b.buckets[i] {
			t.Fatalf("bucket %d differs: %+v vs %+v", i, a.buckets[i], b.buckets[i])
		}
	}
}

// TestHeavyKeeperMinHeapOrder: the heap must be a valid min-heap after
// arbitrary churn (offer with rising counts exercises siftDown, insertion
// siftUp).
func TestHeavyKeeperMinHeapOrder(t *testing.T) {
	hk := newHeavyKeeper(16, nil)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50000; i++ {
		k := hkKey(rng.Intn(64))
		hk.add(hashKey(k), k)
	}
	for i := range hk.heap {
		for _, child := range []int{2*i + 1, 2*i + 2} {
			if child < len(hk.heap) && hk.heap[child].count < hk.heap[i].count {
				t.Fatalf("heap violation: parent %d count %d > child %d count %d",
					i, hk.heap[i].count, child, hk.heap[child].count)
			}
		}
	}
}
