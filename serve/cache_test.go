package serve

import (
	"bytes"
	"math"
	"testing"

	sdquery "repro"
)

func cacheQuery() sdquery.Query {
	return sdquery.Query{
		Point:   []float64{0.25, 0.5, 0.75, 1.0},
		K:       5,
		Roles:   testRoles(),
		Weights: []float64{1, 0.5, 0.25, 1},
	}
}

// TestCacheKeyCanonicalization pins the key-encoding equivalences: floats
// that compare equal must share a cache entry, and semantically identical
// defaulted weights must too, while every semantically distinct query gets
// a distinct key.
func TestCacheKeyCanonicalization(t *testing.T) {
	base := cacheQuery()
	key := func(q sdquery.Query) []byte { return appendQueryKey(nil, q) }

	// -0.0 and +0.0 compare equal and score identically: one entry.
	negZero := cacheQuery()
	negZero.Point[0] = math.Copysign(0, -1)
	posZero := cacheQuery()
	posZero.Point[0] = 0
	if !bytes.Equal(key(negZero), key(posZero)) {
		t.Error("-0.0 and +0.0 points produced distinct cache keys")
	}
	negZeroW := cacheQuery()
	negZeroW.Weights[1] = math.Copysign(0, -1)
	posZeroW := cacheQuery()
	posZeroW.Weights[1] = 0
	if !bytes.Equal(key(negZeroW), key(posZeroW)) {
		t.Error("-0.0 and +0.0 weights produced distinct cache keys")
	}

	// Nil weights mean all-ones: same entry as explicit ones.
	nilW := cacheQuery()
	nilW.Weights = nil
	onesW := cacheQuery()
	onesW.Weights = []float64{1, 1, 1, 1}
	if !bytes.Equal(key(nilW), key(onesW)) {
		t.Error("nil weights and explicit all-ones weights produced distinct keys")
	}

	// NaN must not panic and must canonicalize to one pattern regardless of
	// payload bits (defense in depth; the decoder rejects NaN upstream).
	nanA := cacheQuery()
	nanA.Point[2] = math.NaN()
	nanB := cacheQuery()
	nanB.Point[2] = math.Float64frombits(math.Float64bits(math.NaN()) ^ 1) // different NaN payload
	if !bytes.Equal(key(nanA), key(nanB)) {
		t.Error("two NaN bit patterns produced distinct cache keys")
	}

	// Distinct queries must produce distinct keys.
	variants := []func(*sdquery.Query){
		func(q *sdquery.Query) { q.K = 6 },
		func(q *sdquery.Query) { q.Point[3] = 0.9 },
		func(q *sdquery.Query) { q.Weights[0] = 0.9 },
		func(q *sdquery.Query) {
			q.Roles = append([]sdquery.Role(nil), q.Roles...)
			q.Roles[0] = sdquery.Attractive
		},
	}
	for i, mutate := range variants {
		q := cacheQuery()
		mutate(&q)
		if bytes.Equal(key(base), key(q)) {
			t.Errorf("variant %d produced the same key as the base query", i)
		}
	}
}

// TestCacheVersioning pins the implicit-invalidation contract: an entry is
// served only at the exact (gen, epoch) it was stored under; any other pair
// is a miss that also drops the stale entry.
func TestCacheVersioning(t *testing.T) {
	c := newResultCache(8)
	key := appendQueryKey(nil, cacheQuery())
	body := []byte(`{"results":[]}` + "\n")

	// Warm the sketch so admission passes (heap has room: first touch wins).
	c.get(key, 1, 1)
	if !c.put(key, 1, 1, body) {
		t.Fatal("put rejected with an empty heap")
	}
	if got, ok := c.get(key, 1, 1); !ok || !bytes.Equal(got, body) {
		t.Fatal("exact-version lookup missed")
	}
	if _, ok := c.get(key, 1, 2); ok {
		t.Fatal("stale epoch served")
	}
	if _, ok := c.get(key, 1, 1); ok {
		t.Fatal("stale entry survived the mismatched lookup")
	}

	c.put(key, 2, 7, body)
	if _, ok := c.get(key, 3, 7); ok {
		t.Fatal("entry from an older generation served after a swap")
	}
}

// TestCacheAdmission: with a full heap of established hot keys, a one-off
// key's computed answer is refused, while a key hammered hot is admitted.
func TestCacheAdmission(t *testing.T) {
	c := newResultCache(2)
	body := []byte("x\n")
	hot1 := []byte("hot-1")
	hot2 := []byte("hot-2")
	for i := 0; i < 100; i++ {
		c.get(hot1, 1, 1)
		c.get(hot2, 1, 1)
	}
	cold := []byte("cold")
	c.get(cold, 1, 1) // one touch: heap is full of hotter keys
	if c.put(cold, 1, 1, body) {
		t.Fatal("one-off key admitted over established heavy hitters")
	}
	if !c.put(hot1, 1, 1, body) {
		t.Fatal("established hot key refused admission")
	}
	// Hammering the cold key must eventually earn admission (and evict one
	// hot entry via the sketch's expulsion callback).
	for i := 0; i < 500; i++ {
		c.get(cold, 1, 1)
	}
	if !c.put(cold, 1, 1, body) {
		t.Fatal("heavily-accessed key still refused admission")
	}
	if n := c.len(); n > 2 {
		t.Fatalf("cache holds %d entries, capacity 2", n)
	}
}

// TestCacheZeroAllocHit gates the fast path: once a key is resident, the
// full hit sequence — pooled key buffer, canonical encode, hash, lookup,
// version check — performs zero heap allocations. This is the property that
// lets a hot query skip the coalescer queue without becoming a GC tax.
func TestCacheZeroAllocHit(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by -race instrumentation")
	}
	c := newResultCache(8)
	q := cacheQuery()
	kb := c.getBuf()
	key := appendQueryKey((*kb)[:0], q)
	c.get(key, 1, 1)
	if !c.put(key, 1, 1, []byte("body\n")) {
		t.Fatal("seed put rejected")
	}
	*kb = key
	c.putBuf(kb)

	allocs := testing.AllocsPerRun(200, func() {
		kb := c.getBuf()
		key := appendQueryKey((*kb)[:0], q)
		if _, ok := c.get(key, 1, 1); !ok {
			t.Fatal("resident key missed")
		}
		*kb = key
		c.putBuf(kb)
	})
	if allocs != 0 {
		t.Fatalf("cache hit path allocates %.1f times per lookup, want 0", allocs)
	}
}
