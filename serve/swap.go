package serve

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"time"

	sdquery "repro"
)

// Zero-downtime index swap. POST /v1/admin/swap {"path": "file.sdx"} loads
// a persisted index (the binary Save/Load format) and publishes it with one
// atomic pointer store. The load — file read, segment decode, deterministic
// tree rebuild — happens entirely on the admin request's goroutine while
// queries keep flowing against the old index; the swap itself is the
// pointer store. Requests that grabbed the old index before the store keep
// using it to completion: every query path takes the index exactly once
// (handlers and the coalescer grab it per request/batch, never per shard),
// and within an index the engine's snapshot discipline pins a consistent
// row set, so no request can observe half an old index and half a new one.
//
// The old index's worker pool is released after the swap. Close only parks
// the pool's goroutines — queries already running on the old index degrade
// to caller-goroutine execution and still answer correctly (documented on
// ShardedIndex.Close), so releasing immediately is safe.

// defaultLoader builds the swap loader used when WithLoader is not given:
// open the file, load whichever index kind it holds, and adapt it to the
// serving interface.
func defaultLoader(opts []sdquery.SDOption) func(path string) (Index, error) {
	return func(path string) (Index, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		eng, err := sdquery.Load(f, opts...)
		if err != nil {
			return nil, err
		}
		return AsIndex(eng)
	}
}

// AsIndex adapts an engine to the serving Index interface. A ShardedIndex
// passes through; an SDIndex is wrapped so its TopKBatch stands in for
// BatchTopK. Other engines (the read-only baselines) are rejected.
func AsIndex(eng sdquery.Engine) (Index, error) {
	switch e := eng.(type) {
	case Index:
		return e, nil
	case *sdquery.SDIndex:
		return singleIndex{e}, nil
	}
	return nil, fmt.Errorf("serve: engine %T does not support serving (need ShardedIndex or SDIndex)", eng)
}

// singleIndex adapts *sdquery.SDIndex: everything is already there except
// BatchTopK's name and shape.
type singleIndex struct {
	*sdquery.SDIndex
}

func (s singleIndex) BatchTopK(queries []sdquery.Query) ([][]sdquery.Result, error) {
	return s.TopKBatch(queries, 0)
}

// BatchTopKContext degrades to a sequential TopKContext loop when the
// context is cancellable — SDIndex.TopKBatch has no cancellation plumbing —
// and to the parallel TopKBatch otherwise (context.Background and friends).
func (s singleIndex) BatchTopKContext(ctx context.Context, queries []sdquery.Query) ([][]sdquery.Result, error) {
	if ctx.Done() == nil {
		return s.TopKBatch(queries, 0)
	}
	out := make([][]sdquery.Result, len(queries))
	for i, q := range queries {
		res, err := s.SDIndex.TopKContext(ctx, q)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		out[i] = res
	}
	return out, nil
}

// Swap atomically replaces the serving index and returns the previous one.
// In-flight requests finish on whichever index they grabbed. The caller
// owns the returned index (the HTTP swap handler releases its worker pool;
// an in-process caller may want to keep it).
func (s *Server) Swap(idx Index) Index {
	// The new box's generation makes every cached entry stale at once:
	// entries are versioned by (gen, epoch) and no entry carries the new gen.
	old := s.box.Swap(s.newBox(idx))
	s.met.swaps.Add(1)
	return old.idx
}

func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	status := http.StatusOK
	defer func() { s.met.observe(epSwap, time.Since(t0), status) }()

	// One swap at a time: concurrent admin calls would race their loads and
	// leak whichever index lost the pointer store.
	s.swapMu.Lock()
	defer s.swapMu.Unlock()

	// On a follower the replication loop owns the index; an admin swap would
	// fork it from the leader.
	if status = s.refuseFollowerWrite(w); status != http.StatusOK {
		return
	}

	body, err := readBody(w, r)
	if err != nil {
		status = http.StatusBadRequest
		writeError(w, status, err)
		return
	}
	var ws wireSwap
	if err := strictUnmarshal(body, &ws); err != nil {
		status = http.StatusBadRequest
		writeError(w, status, err)
		return
	}
	if ws.Path == "" {
		status = http.StatusBadRequest
		writeError(w, status, fmt.Errorf("swap needs a path"))
		return
	}
	next, err := s.cfg.loader(ws.Path)
	if err != nil {
		status = http.StatusBadRequest
		writeError(w, status, fmt.Errorf("load %s: %w", ws.Path, err))
		return
	}
	old := s.Swap(next)
	if c, ok := old.(closer); ok && old != next {
		c.Close()
	}
	writeJSON(w, http.StatusOK, swapResponse{Swapped: true, Points: next.Len()})
}
