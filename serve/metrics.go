package serve

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Serving metrics: fixed-shape atomic counters — no locks, no maps on the
// request path — exported two ways: Prometheus text format on GET /metrics
// and a human-oriented JSON snapshot on GET /statz. Latency is recorded in
// a log-bucketed histogram (Prometheus histogram semantics); p50/p99 in
// /statz are bucket upper bounds, the same resolution a Prometheus
// histogram_quantile would report.

// endpoint enumerates the metered request families.
type endpoint int

const (
	epTopK endpoint = iota
	epBatch
	epInsert
	epRemove
	epSwap
	nEndpoints
)

func (e endpoint) String() string {
	switch e {
	case epTopK:
		return "topk"
	case epBatch:
		return "batch"
	case epInsert:
		return "insert"
	case epRemove:
		return "remove"
	case epSwap:
		return "swap"
	}
	return "unknown"
}

// nLatBuckets finite histogram buckets: 50µs doubling to ~1.6s, plus the
// implicit +Inf bucket. Sixteen buckets straddle everything from a warm
// in-memory query to a stalled swap.
const nLatBuckets = 16

var latBuckets = func() [nLatBuckets]float64 {
	var b [nLatBuckets]float64
	v := 50e-6
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// histogram is a fixed-bucket latency histogram. counts[nLatBuckets] is the
// +Inf bucket.
type histogram struct {
	counts [nLatBuckets + 1]atomic.Uint64
	sumNs  atomic.Uint64
	n      atomic.Uint64
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(latBuckets) && s > latBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNs.Add(uint64(d.Nanoseconds()))
	h.n.Add(1)
}

// quantile returns the upper bound of the bucket holding the q-quantile
// observation (0 when empty). The +Inf bucket reports the largest finite
// bound — a floor, which is the honest direction for a tail estimate.
func (h *histogram) quantile(q float64) float64 {
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum > rank {
			if i < len(latBuckets) {
				return latBuckets[i]
			}
			return latBuckets[len(latBuckets)-1]
		}
	}
	return latBuckets[len(latBuckets)-1]
}

// metrics is the server's counter surface.
type metrics struct {
	start time.Time

	requests   [nEndpoints]atomic.Uint64 // all finished requests, any status
	errors     [nEndpoints]atomic.Uint64 // 4xx/5xx except rejections and disconnects
	rejected   [nEndpoints]atomic.Uint64 // 429 backpressure rejections
	clientGone [nEndpoints]atomic.Uint64 // 499 client disconnects (not errors)
	latency    [nEndpoints]histogram

	// Coalescing telemetry: executed batches and the queries they carried;
	// the mean batch size is the coalescing win the load harness gates on.
	batches   atomic.Uint64
	coalesced atomic.Uint64

	swaps atomic.Uint64

	// Result-cache telemetry. Hits and misses are /v1/topk lookups against
	// the cache; rejects are computed answers the HeavyKeeper admission
	// sketch declined to store (the key was not among the tracked heavy
	// hitters) or that failed the post-execution epoch check.
	cacheHits    atomic.Uint64
	cacheMisses  atomic.Uint64
	cacheRejects atomic.Uint64

	// Engine work counters, accumulated from stats-enabled queries (the
	// TopKWithStats path); statQueries is their denominator.
	fetched     atomic.Uint64
	scored      atomic.Uint64
	planHits    atomic.Uint64
	statQueries atomic.Uint64
}

func (m *metrics) observe(ep endpoint, d time.Duration, status int) {
	m.requests[ep].Add(1)
	m.latency[ep].observe(d)
	switch {
	case status == 429:
		m.rejected[ep].Add(1)
	case status == statusClientClosedRequest:
		// The client hung up; the server did nothing wrong. Counted apart
		// from errors so disconnect waves can't trip error-rate alerts.
		m.clientGone[ep].Add(1)
	case status >= 400:
		m.errors[ep].Add(1)
	}
}

func (m *metrics) observeBatch(n int) {
	m.batches.Add(1)
	m.coalesced.Add(uint64(n))
}

// meanBatch is the mean coalesced batch size so far (0 when no batch ran).
func (m *metrics) meanBatch() float64 {
	b := m.batches.Load()
	if b == 0 {
		return 0
	}
	return float64(m.coalesced.Load()) / float64(b)
}

// cacheHitRate is hits / (hits + misses), 0 when the cache saw no lookups.
func (m *metrics) cacheHitRate() float64 {
	h, mi := m.cacheHits.Load(), m.cacheMisses.Load()
	if h+mi == 0 {
		return 0
	}
	return float64(h) / float64(h+mi)
}

// writeProm renders the Prometheus text exposition format. cache is nil
// when the result cache is disabled; its series are emitted either way so
// the exposition schema is stable across configurations.
func (m *metrics) writeProm(w io.Writer, idx Index, cache *resultCache) {
	fmt.Fprintf(w, "# HELP sdserver_uptime_seconds Time since the server started.\n# TYPE sdserver_uptime_seconds gauge\n")
	fmt.Fprintf(w, "sdserver_uptime_seconds %g\n", time.Since(m.start).Seconds())

	fmt.Fprintf(w, "# HELP sdserver_requests_total Finished requests by endpoint.\n# TYPE sdserver_requests_total counter\n")
	for ep := endpoint(0); ep < nEndpoints; ep++ {
		fmt.Fprintf(w, "sdserver_requests_total{endpoint=%q} %d\n", ep, m.requests[ep].Load())
	}
	fmt.Fprintf(w, "# HELP sdserver_errors_total Failed requests (4xx/5xx, rejections excluded) by endpoint.\n# TYPE sdserver_errors_total counter\n")
	for ep := endpoint(0); ep < nEndpoints; ep++ {
		fmt.Fprintf(w, "sdserver_errors_total{endpoint=%q} %d\n", ep, m.errors[ep].Load())
	}
	fmt.Fprintf(w, "# HELP sdserver_rejected_total Backpressure rejections (429) by endpoint.\n# TYPE sdserver_rejected_total counter\n")
	for ep := endpoint(0); ep < nEndpoints; ep++ {
		fmt.Fprintf(w, "sdserver_rejected_total{endpoint=%q} %d\n", ep, m.rejected[ep].Load())
	}
	fmt.Fprintf(w, "# HELP sdserver_client_disconnects_total Requests abandoned by the client (499) by endpoint.\n# TYPE sdserver_client_disconnects_total counter\n")
	for ep := endpoint(0); ep < nEndpoints; ep++ {
		fmt.Fprintf(w, "sdserver_client_disconnects_total{endpoint=%q} %d\n", ep, m.clientGone[ep].Load())
	}

	fmt.Fprintf(w, "# HELP sdserver_request_duration_seconds Request latency by endpoint.\n# TYPE sdserver_request_duration_seconds histogram\n")
	for ep := endpoint(0); ep < nEndpoints; ep++ {
		h := &m.latency[ep]
		var cum uint64
		for i, ub := range latBuckets {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "sdserver_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n", ep, fmt.Sprintf("%g", ub), cum)
		}
		cum += h.counts[len(latBuckets)].Load()
		fmt.Fprintf(w, "sdserver_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, cum)
		fmt.Fprintf(w, "sdserver_request_duration_seconds_sum{endpoint=%q} %g\n", ep, float64(h.sumNs.Load())/1e9)
		fmt.Fprintf(w, "sdserver_request_duration_seconds_count{endpoint=%q} %d\n", ep, h.n.Load())
	}

	fmt.Fprintf(w, "# HELP sdserver_coalesced_batches_total Executed coalesced batches.\n# TYPE sdserver_coalesced_batches_total counter\n")
	fmt.Fprintf(w, "sdserver_coalesced_batches_total %d\n", m.batches.Load())
	fmt.Fprintf(w, "# HELP sdserver_coalesced_queries_total Queries executed through coalesced batches.\n# TYPE sdserver_coalesced_queries_total counter\n")
	fmt.Fprintf(w, "sdserver_coalesced_queries_total %d\n", m.coalesced.Load())
	fmt.Fprintf(w, "# HELP sdserver_index_swaps_total Completed zero-downtime index swaps.\n# TYPE sdserver_index_swaps_total counter\n")
	fmt.Fprintf(w, "sdserver_index_swaps_total %d\n", m.swaps.Load())

	fmt.Fprintf(w, "# HELP sdserver_cache_hits_total Result-cache hits on /v1/topk.\n# TYPE sdserver_cache_hits_total counter\n")
	fmt.Fprintf(w, "sdserver_cache_hits_total %d\n", m.cacheHits.Load())
	fmt.Fprintf(w, "# HELP sdserver_cache_misses_total Result-cache misses on /v1/topk.\n# TYPE sdserver_cache_misses_total counter\n")
	fmt.Fprintf(w, "sdserver_cache_misses_total %d\n", m.cacheMisses.Load())
	fmt.Fprintf(w, "# HELP sdserver_cache_admission_rejects_total Computed answers the heavy-hitter sketch declined to cache.\n# TYPE sdserver_cache_admission_rejects_total counter\n")
	fmt.Fprintf(w, "sdserver_cache_admission_rejects_total %d\n", m.cacheRejects.Load())
	fmt.Fprintf(w, "# HELP sdserver_cache_hit_rate Result-cache hit rate since start (hits / lookups).\n# TYPE sdserver_cache_hit_rate gauge\n")
	fmt.Fprintf(w, "sdserver_cache_hit_rate %g\n", m.cacheHitRate())
	fmt.Fprintf(w, "# HELP sdserver_cache_entries Resident result-cache entries.\n# TYPE sdserver_cache_entries gauge\n")
	if cache != nil {
		fmt.Fprintf(w, "sdserver_cache_entries %d\n", cache.len())
	} else {
		fmt.Fprintf(w, "sdserver_cache_entries 0\n")
	}

	fmt.Fprintf(w, "# HELP sdserver_engine_fetched_total Sorted accesses spent by stats-enabled queries.\n# TYPE sdserver_engine_fetched_total counter\n")
	fmt.Fprintf(w, "sdserver_engine_fetched_total %d\n", m.fetched.Load())
	fmt.Fprintf(w, "# HELP sdserver_engine_scored_total Points scored by stats-enabled queries.\n# TYPE sdserver_engine_scored_total counter\n")
	fmt.Fprintf(w, "sdserver_engine_scored_total %d\n", m.scored.Load())
	fmt.Fprintf(w, "# HELP sdserver_engine_plan_cache_hits_total Plan-cache hits reported by stats-enabled queries.\n# TYPE sdserver_engine_plan_cache_hits_total counter\n")
	fmt.Fprintf(w, "sdserver_engine_plan_cache_hits_total %d\n", m.planHits.Load())
	fmt.Fprintf(w, "# HELP sdserver_engine_stats_queries_total Queries that carried stats=true.\n# TYPE sdserver_engine_stats_queries_total counter\n")
	fmt.Fprintf(w, "sdserver_engine_stats_queries_total %d\n", m.statQueries.Load())

	// Index-shape gauges: live points, resident bytes, and — when the index
	// exposes them — the segment stack shape and the compaction counter.
	fmt.Fprintf(w, "# HELP sdserver_index_points Live points in the serving index.\n# TYPE sdserver_index_points gauge\n")
	fmt.Fprintf(w, "sdserver_index_points %d\n", idx.Len())
	fmt.Fprintf(w, "# HELP sdserver_index_bytes Estimated resident bytes of the serving index.\n# TYPE sdserver_index_bytes gauge\n")
	fmt.Fprintf(w, "sdserver_index_bytes %d\n", idx.Bytes())
	if sg, ok := idx.(segmenter); ok {
		segs, mem := sg.Segments()
		fmt.Fprintf(w, "# HELP sdserver_index_segments Sealed segments across the serving index.\n# TYPE sdserver_index_segments gauge\n")
		fmt.Fprintf(w, "sdserver_index_segments %d\n", segs)
		fmt.Fprintf(w, "# HELP sdserver_index_memtable_rows Unsealed memtable rows across the serving index.\n# TYPE sdserver_index_memtable_rows gauge\n")
		fmt.Fprintf(w, "sdserver_index_memtable_rows %d\n", mem)
	}
	if cp, ok := idx.(compactioner); ok {
		fmt.Fprintf(w, "# HELP sdserver_index_compactions_total Compaction steps completed by the serving index.\n# TYPE sdserver_index_compactions_total counter\n")
		fmt.Fprintf(w, "sdserver_index_compactions_total %d\n", cp.Compactions())
	}

	// Write-ahead-log telemetry, present when the serving index is durable.
	if ws, ok := idx.(walStater); ok {
		if st := ws.WALStats(); st.Enabled {
			fmt.Fprintf(w, "# HELP sdserver_wal_appends_total Records appended to the write-ahead log.\n# TYPE sdserver_wal_appends_total counter\n")
			fmt.Fprintf(w, "sdserver_wal_appends_total %d\n", st.Appends)
			fmt.Fprintf(w, "# HELP sdserver_wal_fsyncs_total Fsyncs issued by the write-ahead log (group commit makes this <= appends).\n# TYPE sdserver_wal_fsyncs_total counter\n")
			fmt.Fprintf(w, "sdserver_wal_fsyncs_total %d\n", st.Fsyncs)
			fmt.Fprintf(w, "# HELP sdserver_wal_bytes_total Record bytes appended to the write-ahead log.\n# TYPE sdserver_wal_bytes_total counter\n")
			fmt.Fprintf(w, "sdserver_wal_bytes_total %d\n", st.Bytes)
			fmt.Fprintf(w, "# HELP sdserver_wal_replay_records Log records replayed by the last recovery.\n# TYPE sdserver_wal_replay_records gauge\n")
			fmt.Fprintf(w, "sdserver_wal_replay_records %d\n", st.ReplayRecords)
			fmt.Fprintf(w, "# HELP sdserver_wal_last_lsn Log sequence number of the last applied mutation.\n# TYPE sdserver_wal_last_lsn gauge\n")
			fmt.Fprintf(w, "sdserver_wal_last_lsn %d\n", st.LSN)
			degraded := 0
			if st.Err != nil {
				degraded = 1
			}
			fmt.Fprintf(w, "# HELP sdserver_wal_degraded Whether the write-ahead log failed and the server is read-only (1 = degraded).\n# TYPE sdserver_wal_degraded gauge\n")
			fmt.Fprintf(w, "sdserver_wal_degraded %d\n", degraded)
		}
	}
}

// writeReplProm appends the node-role and replication series to /metrics.
// It is a Server method (not a metrics method) because the data lives on
// the server: the follower state and the index's LSN vector.
func (s *Server) writeReplProm(w io.Writer) {
	role := "leader"
	if s.repl.Load() != nil {
		role = "follower"
	}
	fmt.Fprintf(w, "# HELP sdserver_role Node role (the labeled role has value 1).\n# TYPE sdserver_role gauge\n")
	fmt.Fprintf(w, "sdserver_role{role=%q} 1\n", role)
	if lv, ok := s.Index().(lsnVectorer); ok {
		fmt.Fprintf(w, "# HELP sdserver_repl_lsn Last-applied WAL LSN per shard.\n# TYPE sdserver_repl_lsn gauge\n")
		for si, lsn := range lv.ShardLSNs() {
			fmt.Fprintf(w, "sdserver_repl_lsn{shard=\"%d\"} %d\n", si, lsn)
		}
	}
	fmt.Fprintf(w, "# HELP sdserver_generation Cluster generation (promotion fencing token).\n# TYPE sdserver_generation gauge\n")
	fmt.Fprintf(w, "sdserver_generation %d\n", s.gen.Load())
	f := s.repl.Load()
	if f == nil {
		return
	}
	fmt.Fprintf(w, "# HELP sdserver_repl_lag_records Leader records not yet applied locally (summed over shards).\n# TYPE sdserver_repl_lag_records gauge\n")
	fmt.Fprintf(w, "sdserver_repl_lag_records %d\n", f.lag.Load())
	fmt.Fprintf(w, "# HELP sdserver_repl_pulls_total Successful replication polls.\n# TYPE sdserver_repl_pulls_total counter\n")
	fmt.Fprintf(w, "sdserver_repl_pulls_total %d\n", f.pulls.Load())
	fmt.Fprintf(w, "# HELP sdserver_repl_pull_errors_total Failed replication polls.\n# TYPE sdserver_repl_pull_errors_total counter\n")
	fmt.Fprintf(w, "sdserver_repl_pull_errors_total %d\n", f.pullErrs.Load())
	fmt.Fprintf(w, "# HELP sdserver_repl_bootstraps_total Full re-bootstraps after the initial one.\n# TYPE sdserver_repl_bootstraps_total counter\n")
	fmt.Fprintf(w, "sdserver_repl_bootstraps_total %d\n", f.bootstraps.Load())
	if last := f.lastPull.Load(); last > 0 {
		fmt.Fprintf(w, "# HELP sdserver_repl_last_pull_age_seconds Seconds since the last successful poll.\n# TYPE sdserver_repl_last_pull_age_seconds gauge\n")
		fmt.Fprintf(w, "sdserver_repl_last_pull_age_seconds %g\n", time.Since(time.Unix(0, last)).Seconds())
	}
}

// EndpointStatz is one endpoint's row in the Statz snapshot.
type EndpointStatz struct {
	Requests    uint64  `json:"requests"`
	Errors      uint64  `json:"errors"`
	Rejected    uint64  `json:"rejected"`
	Disconnects uint64  `json:"client_disconnects"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MeanMs      float64 `json:"mean_ms"`
}

// ReplStatz is the follower's replication block in Statz.
type ReplStatz struct {
	Leader           string `json:"leader"`
	LagRecords       uint64 `json:"lag_records"`
	LastPullUnixNano int64  `json:"last_pull_unix_nano"`
	Pulls            uint64 `json:"pulls"`
	PullErrors       uint64 `json:"pull_errors"`
	Bootstraps       uint64 `json:"bootstraps"`
}

// Statz is the JSON diagnostic snapshot served on GET /statz (and returned
// by Server.Statz for in-process consumers like the load harness).
type Statz struct {
	UptimeSeconds float64                  `json:"uptime_seconds"`
	QPS           float64                  `json:"qps"`
	Endpoints     map[string]EndpointStatz `json:"endpoints"`

	// Role is "leader" or "follower"; Repl is present only on followers.
	// ReplLSNs is the per-shard last-applied LSN vector (empty without a
	// WAL); IndexIDSpace is the size of the global ID space — every indexed
	// ID is below it, which is how a router seeds cluster-unique IDs.
	Role         string     `json:"role"`
	Generation   uint64     `json:"generation"`
	Repl         *ReplStatz `json:"repl,omitempty"`
	ReplLSNs     []uint64   `json:"repl_lsns,omitempty"`
	IndexIDSpace int        `json:"index_id_space"`

	CoalescedBatches   uint64  `json:"coalesced_batches"`
	CoalescedQueries   uint64  `json:"coalesced_queries"`
	CoalescedBatchMean float64 `json:"coalesced_batch_mean"`

	CacheEnabled bool    `json:"cache_enabled"`
	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
	CacheRejects uint64  `json:"cache_admission_rejects"`
	CacheEntries int     `json:"cache_entries"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	IndexPoints      int    `json:"index_points"`
	IndexBytes       int    `json:"index_bytes"`
	IndexSegments    int    `json:"index_segments,omitempty"`
	IndexMemRows     int    `json:"index_memtable_rows,omitempty"`
	IndexCompactions uint64 `json:"index_compactions,omitempty"`
	Swaps            uint64 `json:"swaps"`

	EngineFetched  uint64 `json:"engine_fetched"`
	EngineScored   uint64 `json:"engine_scored"`
	EnginePlanHits uint64 `json:"engine_plan_cache_hits"`
	StatsQueries   uint64 `json:"stats_queries"`

	// Write-ahead-log state, zero-valued when the serving index is not
	// durable. WALDegraded true means the log failed stickily and the
	// server refuses writes (503) until the index is reopened.
	WALEnabled       bool   `json:"wal_enabled"`
	WALAppends       uint64 `json:"wal_appends,omitempty"`
	WALFsyncs        uint64 `json:"wal_fsyncs,omitempty"`
	WALBytes         uint64 `json:"wal_bytes,omitempty"`
	WALReplayRecords uint64 `json:"wal_replay_records,omitempty"`
	WALLastLSN       uint64 `json:"wal_last_lsn,omitempty"`
	WALDegraded      bool   `json:"wal_degraded"`
	WALError         string `json:"wal_error,omitempty"`
}

func (m *metrics) statz(idx Index, cache *resultCache) Statz {
	up := time.Since(m.start).Seconds()
	st := Statz{
		UptimeSeconds:      up,
		Endpoints:          make(map[string]EndpointStatz, nEndpoints),
		CoalescedBatches:   m.batches.Load(),
		CoalescedQueries:   m.coalesced.Load(),
		CoalescedBatchMean: m.meanBatch(),
		CacheEnabled:       cache != nil,
		CacheHits:          m.cacheHits.Load(),
		CacheMisses:        m.cacheMisses.Load(),
		CacheRejects:       m.cacheRejects.Load(),
		CacheHitRate:       m.cacheHitRate(),
		IndexPoints:        idx.Len(),
		IndexBytes:         idx.Bytes(),
		Swaps:              m.swaps.Load(),
		EngineFetched:      m.fetched.Load(),
		EngineScored:       m.scored.Load(),
		EnginePlanHits:     m.planHits.Load(),
		StatsQueries:       m.statQueries.Load(),
	}
	var total uint64
	for ep := endpoint(0); ep < nEndpoints; ep++ {
		h := &m.latency[ep]
		n := h.n.Load()
		row := EndpointStatz{
			Requests:    m.requests[ep].Load(),
			Errors:      m.errors[ep].Load(),
			Rejected:    m.rejected[ep].Load(),
			Disconnects: m.clientGone[ep].Load(),
			P50Ms:       h.quantile(0.50) * 1e3,
			P99Ms:       h.quantile(0.99) * 1e3,
		}
		if n > 0 {
			row.MeanMs = float64(h.sumNs.Load()) / float64(n) / 1e6
		}
		st.Endpoints[ep.String()] = row
		total += row.Requests
	}
	if up > 0 {
		st.QPS = float64(total) / up
	}
	if sg, ok := idx.(segmenter); ok {
		st.IndexSegments, st.IndexMemRows = sg.Segments()
	}
	if cp, ok := idx.(compactioner); ok {
		st.IndexCompactions = cp.Compactions()
	}
	if cache != nil {
		st.CacheEntries = cache.len()
	}
	if ws, ok := idx.(walStater); ok {
		if wst := ws.WALStats(); wst.Enabled {
			st.WALEnabled = true
			st.WALAppends = wst.Appends
			st.WALFsyncs = wst.Fsyncs
			st.WALBytes = wst.Bytes
			st.WALReplayRecords = wst.ReplayRecords
			st.WALLastLSN = wst.LSN
			if wst.Err != nil {
				st.WALDegraded = true
				st.WALError = wst.Err.Error()
			}
		}
	}
	return st
}
