package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestCoalescingUnderConcurrency is the admission-layer acceptance test:
// under genuinely concurrent clients the server must gather single queries
// into multi-query batches (mean coalesced batch size > 1), and every
// coalesced answer must stay byte-identical to the direct engine call.
func TestCoalescingUnderConcurrency(t *testing.T) {
	idx := testIndex(t, 5_000, 40)
	srv := New(idx, WithCoalesceWindow(2*time.Millisecond), WithQueueDepth(4096))
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	queries := testQueries(16, 41)
	bodies := make([][]byte, len(queries))
	goldens := make([][]byte, len(queries))
	for i, q := range queries {
		direct, err := idx.TopK(q)
		if err != nil {
			t.Fatal(err)
		}
		bodies[i] = queryBody(t, q)
		goldens[i] = goldenBody(t, direct)
	}

	const clients, rounds = 16, 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			qi := w % len(queries)
			for r := 0; r < rounds; r++ {
				status, out, err := postE(ts.Client(), ts.URL+"/v1/topk", bodies[qi])
				if err != nil {
					t.Error(err)
					return
				}
				if status != http.StatusOK {
					t.Errorf("client %d: status %d: %s", w, status, out)
					return
				}
				if !bytes.Equal(out, goldens[qi]) {
					t.Errorf("client %d: coalesced answer differs from direct TopK\ngot  %s\nwant %s", w, out, goldens[qi])
					return
				}
			}
		}(w)
	}
	close(start)
	wg.Wait()

	st := srv.Statz()
	if st.CoalescedQueries != clients*rounds {
		t.Fatalf("coalesced %d queries, want %d", st.CoalescedQueries, clients*rounds)
	}
	if st.CoalescedBatchMean <= 1 {
		t.Fatalf("mean coalesced batch size %.2f, want > 1 under %d concurrent clients",
			st.CoalescedBatchMean, clients)
	}
	t.Logf("coalescing: %d queries in %d batches (mean %.2f)",
		st.CoalescedQueries, st.CoalescedBatches, st.CoalescedBatchMean)
}

// TestCoalescerShutdownDrains: closing the server with requests parked in
// the queue must fail them cleanly, not hang or panic.
func TestCoalescerShutdownDrains(t *testing.T) {
	idx := testIndex(t, 500, 42)
	slow := &slowIndex{Index: idx, gate: make(chan struct{})}
	srv := New(slow, WithExecutors(1), WithMaxBatch(1), WithQueueDepth(64), WithCoalesceWindow(0))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := queryBody(t, testQueries(1, 43)[0])
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			postE(ts.Client(), ts.URL+"/v1/topk", body) // outcome irrelevant; must terminate
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(slow.gate)
	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("server Close hung with queued requests")
	}
	wg.Wait()
}
