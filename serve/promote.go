package serve

import (
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	sdquery "repro"
)

// trimURL canonicalizes a node URL the way NewFollower does.
func trimURL(u string) string { return strings.TrimRight(u, "/") }

// Fenced role transitions — the node half of automated leader failover.
//
// A router that decides a partition's leader is gone elects the most
// caught-up live replica and promotes it:
//
//	POST /v1/admin/promote {"generation": G}
//
// The call is fenced by the generation number: it succeeds only when G is
// strictly above the node's current generation (and idempotently re-acks
// when the node is already the generation-G leader — promotion acks can be
// lost like any other). On success the follower stops tailing its old
// leader, attaches a fresh write-ahead log under WithPromotionWALDir (so
// leadership and durability arrive together), bumps its box generation —
// which changes the replication source token, telling any followers OF THIS
// NODE to re-bootstrap onto the new history — and starts accepting writes
// stamped with generation G.
//
// The old leader, when it comes back, is demoted rather than trusted:
//
//	POST /v1/admin/demote {"generation": G, "leader": url}
//
// also fenced (G must be above the node's generation — a deposed leader is
// always behind the generation that replaced it). The node re-bootstraps as
// a follower of the new leader from fresh snapshots, discarding whatever
// divergent tail it committed after the router stopped acknowledging it —
// those rows were never acked through generation G, so dropping them loses
// nothing the cluster promised. Between the fence on these two endpoints
// and the fence on the write path (refuseFencedWrite), at most one node per
// partition accepts writes for any generation: split-brain requires two
// nodes at the same generation both in the leader role, and the generation
// allocator (the router) hands each generation to exactly one node.

// WithPromotionWALDir sets where a promoted follower opens its write-ahead
// log. Each promotion attaches a WAL under a fresh subdirectory (one per
// generation), seeded with a checkpoint of the replicated state, so the
// promoted leader is exactly as durable as a leader started with -wal-dir.
// Without it a promotion still succeeds but the new leader runs non-durable
// — acceptable for tests, stated loudly in the response.
func WithPromotionWALDir(dir string) Option {
	return func(c *config) { c.promoteWALDir = dir }
}

// walAttacher is the index capability promotion needs for durability —
// implemented by ShardedIndex (the type every follower serves).
type walAttacher interface {
	AttachWAL(dir string, opts ...sdquery.SDOption) error
}

type wirePromote struct {
	Generation uint64 `json:"generation"`
}

type promoteResponse struct {
	Promoted   bool     `json:"promoted"`
	Generation uint64   `json:"generation"`
	Durable    bool     `json:"durable"`
	LSNs       []uint64 `json:"lsns,omitempty"`
}

type wireDemote struct {
	Generation uint64 `json:"generation"`
	Leader     string `json:"leader"`
}

type demoteResponse struct {
	Demoted    bool   `json:"demoted"`
	Generation uint64 `json:"generation"`
	Leader     string `json:"leader"`
}

func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	status := http.StatusOK
	defer func() { s.met.observe(epSwap, time.Since(t0), status) }()

	s.swapMu.Lock()
	defer s.swapMu.Unlock()

	body, err := readBody(w, r)
	if err != nil {
		status = http.StatusBadRequest
		writeError(w, status, err)
		return
	}
	var wp wirePromote
	if err := strictUnmarshal(body, &wp); err != nil {
		status = http.StatusBadRequest
		writeError(w, status, err)
		return
	}
	if wp.Generation == 0 {
		status = http.StatusBadRequest
		writeError(w, status, fmt.Errorf("serve: promote needs a generation ≥ 1"))
		return
	}
	cur := s.gen.Load()
	f := s.repl.Load()
	if f == nil {
		// Already a leader. An equal generation is a retried promotion whose
		// ack was lost — re-ack it; a higher one is a router that moved on and
		// is re-asserting this node (adopt it); a lower one is a stale router.
		if wp.Generation < cur {
			status = http.StatusConflict
			writeError(w, status, fmt.Errorf("serve: promote generation %d is behind node generation %d", wp.Generation, cur))
			return
		}
		s.gen.Store(wp.Generation)
		writeJSON(w, http.StatusOK, s.promotedResponse(wp.Generation))
		return
	}
	if wp.Generation <= cur {
		status = http.StatusConflict
		writeError(w, status, fmt.Errorf("serve: promote generation %d is not above node generation %d", wp.Generation, cur))
		return
	}

	// Stop tailing the old leader before anything else: once the WAL attach
	// below checkpoints a shard, replicated records applied concurrently
	// would land in the engine but not in the new log and be lost on crash.
	f.stop()

	if s.cfg.promoteWALDir != "" {
		if err := s.attachPromotionWAL(wp.Generation); err != nil {
			// Leadership without the configured durability is not leadership:
			// resume following (fresh control channels, same leader and
			// cursor) and let the router retry or pick someone else.
			s.resumeFollowing(f)
			status = http.StatusInternalServerError
			writeError(w, status, fmt.Errorf("serve: promote: attach wal: %w", err))
			return
		}
	}

	s.gen.Store(wp.Generation)
	s.repl.Store(nil)
	// Republishing the same index under a new box generation changes the
	// replication source token: followers of this node (there may be none
	// yet) treat the promoted state as the new history and re-bootstrap.
	s.Swap(s.Index())
	writeJSON(w, http.StatusOK, s.promotedResponse(wp.Generation))
}

func (s *Server) promotedResponse(gen uint64) promoteResponse {
	resp := promoteResponse{Promoted: true, Generation: gen}
	idx := s.Index()
	if ws, ok := idx.(walStater); ok {
		resp.Durable = ws.WALStats().Enabled && ws.WALStats().Err == nil
	}
	if lv, ok := idx.(lsnVectorer); ok {
		resp.LSNs = lv.ShardLSNs()
	}
	return resp
}

// attachPromotionWAL opens the promoted node's own write-ahead log under a
// per-generation directory. MkdirTemp keeps retried promotions of the same
// generation (crash between attach and ack) from colliding with the
// half-attached directory a previous attempt left behind.
func (s *Server) attachPromotionWAL(gen uint64) error {
	wa, ok := s.Index().(walAttacher)
	if !ok {
		return fmt.Errorf("index %T cannot attach a write-ahead log", s.Index())
	}
	if err := os.MkdirAll(s.cfg.promoteWALDir, 0o755); err != nil {
		return err
	}
	dir, err := os.MkdirTemp(s.cfg.promoteWALDir, fmt.Sprintf("gen-%d-", gen))
	if err != nil {
		return err
	}
	return wa.AttachWAL(dir, s.cfg.loadOpts...)
}

// resumeFollowing restarts the pull loop after a failed promotion. The old
// followerState's control channels are spent (stop closed them), so the
// loop gets a fresh pair around the same leader, cursor, and counters.
func (s *Server) resumeFollowing(old *followerState) {
	nf := &followerState{
		leaderURL: old.leaderURL,
		client:    old.client,
		interval:  old.interval,
		loadOpts:  old.loadOpts,
		source:    old.source,
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	nf.lag.Store(old.lag.Load())
	nf.lastPull.Store(old.lastPull.Load())
	nf.pulls.Store(old.pulls.Load())
	nf.pullErrs.Store(old.pullErrs.Load())
	nf.bootstraps.Store(old.bootstraps.Load())
	s.repl.Store(nf)
	go s.followLoop(nf)
}

func (s *Server) handleDemote(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	status := http.StatusOK
	defer func() { s.met.observe(epSwap, time.Since(t0), status) }()

	s.swapMu.Lock()
	defer s.swapMu.Unlock()

	body, err := readBody(w, r)
	if err != nil {
		status = http.StatusBadRequest
		writeError(w, status, err)
		return
	}
	var wd wireDemote
	if err := strictUnmarshal(body, &wd); err != nil {
		status = http.StatusBadRequest
		writeError(w, status, err)
		return
	}
	if wd.Generation == 0 || wd.Leader == "" {
		status = http.StatusBadRequest
		writeError(w, status, fmt.Errorf("serve: demote needs a generation ≥ 1 and a leader url"))
		return
	}
	cur := s.gen.Load()
	old := s.repl.Load()
	if old != nil {
		// Already a follower. Same leader at a covered generation is a
		// retried demotion — re-ack; a newer generation naming a different
		// leader re-points this follower through a full re-bootstrap below.
		if wd.Generation < cur {
			status = http.StatusConflict
			writeError(w, status, fmt.Errorf("serve: demote generation %d is behind node generation %d", wd.Generation, cur))
			return
		}
		if old.leaderURL == trimURL(wd.Leader) {
			s.gen.Store(wd.Generation)
			writeJSON(w, http.StatusOK, demoteResponse{Demoted: true, Generation: wd.Generation, Leader: old.leaderURL})
			return
		}
	} else if wd.Generation <= cur {
		// A leader only steps down for a generation strictly above its own:
		// equal means this node IS that generation's leader.
		status = http.StatusConflict
		writeError(w, status, fmt.Errorf("serve: demote generation %d is not above node generation %d", wd.Generation, cur))
		return
	}

	// Build the new follower state and bootstrap from the new leader BEFORE
	// touching the serving state: if the new leader is unreachable the node
	// stays in its current role and the router retries on its next probe.
	nf := &followerState{
		leaderURL: trimURL(wd.Leader),
		client:    &http.Client{Timeout: 30 * time.Second},
		interval:  s.cfg.followInterval,
		loadOpts:  s.cfg.loadOpts,
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	if nf.interval <= 0 {
		nf.interval = 200 * time.Millisecond
	}
	idx, src, err := nf.bootstrap()
	if err != nil {
		status = http.StatusServiceUnavailable
		writeError(w, status, fmt.Errorf("serve: demote: bootstrap from %s: %w", nf.leaderURL, err))
		return
	}
	nf.source = src

	// Stop whatever was driving the index, fence the generation, install the
	// follower state (writes start refusing with the new leader hint), then
	// swap in the bootstrapped index. Ordering matters: repl before Swap, so
	// no write can slip into the new index between the two stores. The old
	// index — and with it any divergent unacked tail this deposed leader
	// still held — is closed and discarded.
	if old != nil {
		old.stop()
	}
	s.gen.Store(wd.Generation)
	s.repl.Store(nf)
	wasOwned := s.ownsIndex.Swap(true)
	oldIdx := s.Swap(idx)
	if c, ok := oldIdx.(closer); ok && wasOwned && oldIdx != idx {
		c.Close()
	}
	go s.followLoop(nf)
	writeJSON(w, http.StatusOK, demoteResponse{Demoted: true, Generation: wd.Generation, Leader: nf.leaderURL})
}
