package serve

import (
	"encoding/binary"
	"math"
	"sync"

	sdquery "repro"
)

// resultCache is the hot-query result cache between the /v1/topk admission
// layer and the engine. It stores fully marshaled response bodies keyed by
// the canonical binary encoding of the query, versioned by the pair
//
//	(box generation, index epoch)
//
// — the generation changes on every /v1/admin/swap (a different Index value
// may restart its epoch counter), and the epoch changes on every insert,
// remove, and compaction inside one index. There is no explicit
// invalidation anywhere: a mutation publishes a new epoch and every older
// entry silently stops matching. Lookups drop entries whose version pair
// disagrees with the current one, so stale bodies are reclaimed by the
// traffic that touches them.
//
// Admission is gated by a HeavyKeeper top-k sketch (sketch.go): every
// lookup feeds the sketch, and a computed answer is stored only while its
// key ranks among the sketch's current heavy hitters. The sketch's heap
// expels a key only to admit a hotter one, and expulsion evicts the key's
// cache entry via the onEvict callback — so the cache is always a subset
// of the tracked heavy hitters and its size never exceeds the configured
// capacity. A one-off query cannot displace an established hot entry.
//
// The hit path is allocation-free: key buffers come from a pool, hashing is
// inline FNV-1a, the map lookup uses the compiler's []byte→string
// no-copy conversion, and the cached body is written to the response as-is.
// A single mutex guards map and sketch together; the critical section is a
// few hundred nanoseconds, far below the cost of the engine fan-out a hit
// saves, and the common contention case (many goroutines hitting the same
// hot key) is exactly the case the cache exists for.
type resultCache struct {
	mu      sync.Mutex
	entries map[string]cacheEntry
	sketch  *heavyKeeper
	keyPool sync.Pool // *[]byte
}

// cacheEntry is one cached answer: the exact response body writeJSON would
// produce (trailing newline included), valid only at its version pair.
type cacheEntry struct {
	gen   uint64
	epoch uint64
	body  []byte
}

func newResultCache(capacity int) *resultCache {
	c := &resultCache{entries: make(map[string]cacheEntry, capacity)}
	// The eviction callback runs inside sketch.add/offer, which only ever
	// executes under c.mu — no extra locking needed.
	c.sketch = newHeavyKeeper(capacity, func(key string) { delete(c.entries, key) })
	return c
}

// getBuf and putBuf recycle key-encoding buffers so the hit path never
// allocates. Callers must restore the (possibly regrown) slice before
// returning it.
func (c *resultCache) getBuf() *[]byte {
	if b, ok := c.keyPool.Get().(*[]byte); ok {
		return b
	}
	b := make([]byte, 0, 256)
	return &b
}

func (c *resultCache) putBuf(b *[]byte) { c.keyPool.Put(b) }

// get looks the key up at the given version pair. Every lookup — hit or
// miss — feeds the admission sketch, so frequency is measured on demand,
// not on fill. An entry whose version disagrees with (gen, epoch) is
// deleted and reported as a miss: served bytes are always exactly what the
// current index would answer.
func (c *resultCache) get(key []byte, gen, epoch uint64) ([]byte, bool) {
	h := hashKey(key)
	c.mu.Lock()
	c.sketch.add(h, key)
	e, ok := c.entries[string(key)]
	if ok && (e.gen != gen || e.epoch != epoch) {
		delete(c.entries, string(key))
		ok = false
	}
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	return e.body, true
}

// put offers a freshly computed body for caching. It is admitted only while
// the key currently ranks among the sketch's heavy hitters; the return
// value reports admission (false feeds the rejection counter). The caller
// must have verified that gen and epoch still describe the index the body
// was computed from — see handleTopK for the protocol.
func (c *resultCache) put(key []byte, gen, epoch uint64, body []byte) bool {
	h := hashKey(key)
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.sketch.hot(h) {
		return false
	}
	c.entries[string(key)] = cacheEntry{gen: gen, epoch: epoch, body: body}
	return true
}

// len reports the resident entry count (for /statz).
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// hashKey is inline FNV-1a 64 — no hash.Hash64 interface, no allocation.
func hashKey(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// canonNaNBits is the single bit pattern every NaN canonicalizes to.
// decodeQuery rejects NaN before any key is built, so this is defense in
// depth: even a NaN smuggled through a future code path cannot mint
// per-bit-pattern distinct keys (NaN has 2^52-ish encodings) or corrupt
// the sketch.
var canonNaNBits = math.Float64bits(math.NaN())

// canonFloatBits maps a float to the bit pattern its cache key uses. Zeros
// collapse (+0.0 == -0.0 numerically, and every scoring path treats them
// identically, so {-0.0} and {0.0} must share one cache entry); NaNs
// collapse to canonNaNBits. Everything else keys on its exact bits.
func canonFloatBits(v float64) uint64 {
	if v == 0 {
		return 0 // math.Float64bits(+0.0); catches -0.0 too, since -0.0 == 0
	}
	if v != v {
		return canonNaNBits
	}
	return math.Float64bits(v)
}

// oneBits is Float64bits(1.0), the encoding of a defaulted weight.
var oneBits = math.Float64bits(1)

// appendQueryKey appends q's canonical cache key to dst. The layout is
// fixed-width given the dimensionality — dims, k, one role byte per
// dimension, then canonicalized point and weight bits — so no separators
// are needed and two distinct queries can never encode to the same bytes.
// Nil weights encode as all ones: the engine treats them identically, so
// {"weights":null} and {"weights":[1,1,...]} share one entry. decodeQuery
// has already validated everything else (lengths match, floats finite), so
// encoding is branch-light appends.
func appendQueryKey(dst []byte, q sdquery.Query) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(q.Point)))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(q.K))
	for _, r := range q.Roles {
		dst = append(dst, byte(r))
	}
	for _, v := range q.Point {
		dst = binary.LittleEndian.AppendUint64(dst, canonFloatBits(v))
	}
	if q.Weights == nil {
		for range q.Point {
			dst = binary.LittleEndian.AppendUint64(dst, oneBits)
		}
		return dst
	}
	for _, w := range q.Weights {
		dst = binary.LittleEndian.AppendUint64(dst, canonFloatBits(w))
	}
	return dst
}
