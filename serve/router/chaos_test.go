package router

// The chaos differential suite: a real multi-node cluster (WAL-backed
// leaders, live followers, the router in front) with netfault proxies on
// every client-facing and replication link, driven while nodes are killed,
// partitioned, and reset mid-response. The oracle is a single node holding
// exactly the acked rows; every non-degraded answer the router returns must
// be byte-identical to it. The three invariants under test:
//
//   1. Failover correctness: after the leader dies, reads keep flowing from
//      the caught-up replica and every acked write is still visible.
//   2. No silently wrong answers: a replica frozen behind a partition never
//      serves a read that misses acked writes — the freshness gate routes
//      around it.
//   3. No duplicated side effects: a write whose ack dies mid-body resolves
//      by idempotent retry under the same ID, never by a second row.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	sdquery "repro"
	"repro/internal/dataset"
	"repro/internal/netfault"
	"repro/serve"
)

// chaosNode is one server plus the fault proxy the router reaches it
// through.
type chaosNode struct {
	srv   *serve.Server
	ts    *httptest.Server
	proxy *netfault.Proxy
}

func (n *chaosNode) url() string { return "http://" + n.proxy.Addr() }

// proxied wraps an httptest server in a netfault proxy.
func proxied(t *testing.T, ts *httptest.Server) *netfault.Proxy {
	t.Helper()
	p, err := netfault.New(ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// chaosLeader builds a WAL-backed leader over the given rows/IDs.
func chaosLeader(t *testing.T, rows [][]float64, ids []int) *chaosNode {
	t.Helper()
	idx, err := sdquery.NewShardedIndexWithIDs(rows, ids, testRoles(),
		sdquery.WithShards(2), sdquery.WithWAL(t.TempDir()), sdquery.WithSyncPolicy(sdquery.SyncNever))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(idx.Close)
	s := serve.New(idx)
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &chaosNode{srv: s, ts: ts, proxy: proxied(t, ts)}
}

// chaosFollower builds a follower replicating from leaderURL.
func chaosFollower(t *testing.T, leaderURL string, opts ...serve.Option) *chaosNode {
	t.Helper()
	s, err := serve.NewFollower(leaderURL, append([]serve.Option{serve.WithFollowInterval(20 * time.Millisecond)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &chaosNode{srv: s, ts: ts, proxy: proxied(t, ts)}
}

// oracleRows tracks the acked logical state of the cluster.
type oracleRows struct {
	rows map[int][]float64
}

func newOracle(data [][]float64, ids []int) *oracleRows {
	o := &oracleRows{rows: make(map[int][]float64, len(data))}
	for i, id := range ids {
		o.rows[id] = data[i]
	}
	return o
}

func (o *oracleRows) put(id int, row []float64) { o.rows[id] = row }

// server materializes the acked state as a single-node index and serves it.
func (o *oracleRows) server(t *testing.T) *httptest.Server {
	t.Helper()
	ids := make([]int, 0, len(o.rows))
	for id := range o.rows {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	rows := make([][]float64, len(ids))
	for i, id := range ids {
		rows[i] = o.rows[id]
	}
	idx, err := sdquery.NewShardedIndexWithIDs(rows, ids, testRoles(), sdquery.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(idx.Close)
	s := serve.New(idx)
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// postBody posts and returns (status, body).
func postBody(t *testing.T, client *http.Client, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil
	}
	defer resp.Body.Close()
	data, _ := readAllBounded(resp.Body)
	return resp.StatusCode, data
}

// ackInsert writes {id, point} through the router, retrying until the
// cluster proves the row committed (200). A mid-flight fault can leave one
// attempt ambiguous; the same-ID retry is exactly the resolution protocol
// the router's design prescribes, so the loop terminates as soon as any
// attempt — past or present — actually landed.
func ackInsert(t *testing.T, client *http.Client, routerURL string, id int, row []float64) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"id": id, "point": row})
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		status, data := postBody(t, client, routerURL+"/v1/insert", body)
		if status == http.StatusOK {
			return
		}
		if status == http.StatusConflict {
			t.Fatalf("insert id %d: 409 — a retry was treated as a new row: %s", id, data)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("insert id %d never acked", id)
}

// compareReads runs queries against the router and the oracle and fails on
// any divergence. Returns how many router reads answered 200.
func compareReads(t *testing.T, client *http.Client, routerURL, oracleURL string, queries []sdquery.Query) int {
	t.Helper()
	okReads := 0
	for qi, q := range queries {
		body := queryBody(t, q)
		ostatus, ob := postBody(t, client, oracleURL+"/v1/topk", body)
		if ostatus != http.StatusOK {
			t.Fatalf("oracle query %d: status %d", qi, ostatus)
		}
		rstatus, rb := postBody(t, client, routerURL+"/v1/topk", body)
		if rstatus != http.StatusOK {
			continue
		}
		okReads++
		if !bytes.Equal(ob, rb) {
			t.Fatalf("query %d diverged from oracle:\noracle %s\nrouter %s", qi, ob, rb)
		}
	}
	return okReads
}

// TestChaosLeaderKillFailover kills a partition's leader mid-run and
// requires reads to keep flowing — byte-identical to the oracle — from the
// caught-up replica, with every acked write still visible.
func TestChaosLeaderKillFailover(t *testing.T) {
	const seedRows = 1_200
	const slots = 32
	names := []string{"p0", "p1"}
	table, err := rendezvousOwners(names, slots)
	if err != nil {
		t.Fatal(err)
	}
	data := dataset.Generate(dataset.Uniform, seedRows, len(testRoles()), 101)
	oracle := newOracle(data, seqIDs(seedRows))

	partRows := make([][][]float64, len(names))
	partIDs := make([][]int, len(names))
	for id, row := range data {
		pi := table[id%slots]
		partRows[pi] = append(partRows[pi], row)
		partIDs[pi] = append(partIDs[pi], id)
	}

	leaders := make([]*chaosNode, len(names))
	followers := make([]*chaosNode, len(names))
	cfg := Config{
		Slots: slots, Seed: 1,
		Retries: 3, BackoffBase: 5 * time.Millisecond,
		TryTimeout: 2 * time.Second, HealthInterval: 30 * time.Millisecond,
		FailAfter: 2, ReopenAfter: 300 * time.Millisecond,
		// This test pins the NON-promoted regime: the dead partition must
		// keep answering 503 for writes. TestChaosPromotionRestoresWrites
		// covers the automated-promotion path.
		PromoteAfter: time.Hour,
	}
	for pi, name := range names {
		leaders[pi] = chaosLeader(t, partRows[pi], partIDs[pi])
		// Followers replicate over the leader's direct (unfaulted) link;
		// this test faults the client-facing path.
		followers[pi] = chaosFollower(t, leaders[pi].ts.URL)
		cfg.Partitions = append(cfg.Partitions, Partition{
			Name: name, Leader: leaders[pi].url(), Replicas: []string{followers[pi].url()},
		})
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()
	client := &http.Client{}

	// Churn: 40 writes through the router under explicit IDs.
	extra := dataset.Generate(dataset.Uniform, 40, len(testRoles()), 102)
	for i, row := range extra {
		id := seedRows + i
		ackInsert(t, client, rts.URL, id, row)
		oracle.put(id, row)
	}

	// Quiesce: all followers caught up, then kill partition 0's leader hard
	// (new connections refused, in-flight ones reset).
	for pi := range names {
		waitCaughtUp(t, leaders[pi].srv, followers[pi].srv)
	}
	leaders[0].proxy.Refuse(true)
	leaders[0].proxy.KillActive()

	// Reads must fail over to the replica. The first attempt per query may
	// burn a retry on the dead leader; the answer must still come back 200
	// and byte-identical — no acked write may have vanished.
	osrv := oracle.server(t)
	queries := testQueries(30, 103)
	big := testQueries(1, 104)[0]
	big.K = seedRows + len(extra) + 10 // every live row, so any lost ack shows
	queries = append(queries, big)
	ok := compareReads(t, client, rts.URL, osrv.URL, queries)
	if ok != len(queries) {
		t.Fatalf("only %d/%d reads answered 200 after leader kill", ok, len(queries))
	}

	// Writes owned by the dead partition must answer 503 (unavailable), not
	// hang and not lie.
	var deadOwned int
	for id := seedRows + len(extra); ; id++ {
		if table[id%slots] == 0 {
			deadOwned = id
			break
		}
	}
	wbody, _ := json.Marshal(map[string]any{"id": deadOwned, "point": extra[0]})
	status, _ := postBody(t, client, rts.URL+"/v1/insert", wbody)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("write to dead partition: status %d, want 503", status)
	}

	// The healthz endpoint reflects the ejected node once probes catch it.
	deadlineH := time.Now().Add(5 * time.Second)
	for {
		resp, err := client.Get(rts.URL + "/healthz")
		if err == nil {
			b, _ := readAllBounded(resp.Body)
			resp.Body.Close()
			if bytes.Contains(b, []byte("ejected")) {
				break
			}
		}
		if time.Now().After(deadlineH) {
			t.Fatal("dead leader never showed as ejected in /healthz")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosStaleReplicaNeverServes freezes a follower's replication link,
// advances the leader past it, and hammers hedged reads: the frozen replica
// must never supply an answer missing acked writes.
func TestChaosStaleReplicaNeverServes(t *testing.T) {
	const seedRows = 800
	data := dataset.Generate(dataset.Uniform, seedRows, len(testRoles()), 111)
	oracle := newOracle(data, seqIDs(seedRows))

	leader := chaosLeader(t, data, seqIDs(seedRows))
	// The follower replicates *through a proxy* so the test can freeze
	// replication without touching its client-facing side.
	replProxy := proxied(t, leader.ts)
	follower := chaosFollower(t, "http://"+replProxy.Addr())

	rt, err := New(Config{
		Partitions: []Partition{{Name: "p0", Leader: leader.url(), Replicas: []string{follower.url()}}},
		Slots:      16, Seed: 1,
		Retries: 3, BackoffBase: 5 * time.Millisecond,
		TryTimeout: 2 * time.Second, HealthInterval: 30 * time.Millisecond,
		FailAfter: 2, ReopenAfter: 300 * time.Millisecond,
		HedgeDelay: time.Millisecond, // hedge to the replica on nearly every read
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()
	client := &http.Client{}

	waitCaughtUp(t, leader.srv, follower.srv)
	// Freeze replication, then advance the leader.
	replProxy.Partition(true, true)
	extra := dataset.Generate(dataset.Uniform, 25, len(testRoles()), 112)
	for i, row := range extra {
		id := seedRows + i
		ackInsert(t, client, rts.URL, id, row)
		oracle.put(id, row)
	}

	// Every read — many of them hedged onto the frozen replica — must match
	// the oracle that contains the new rows. The freshness gate is what
	// stands between this and a silently stale answer.
	osrv := oracle.server(t)
	queries := testQueries(30, 113)
	big := testQueries(1, 114)[0]
	big.K = seedRows + len(extra) + 10
	queries = append(queries, big)
	ok := compareReads(t, client, rts.URL, osrv.URL, queries)
	if ok != len(queries) {
		t.Fatalf("only %d/%d reads answered 200 with a frozen replica", ok, len(queries))
	}

	// Heal; the follower catches up and becomes servable again.
	replProxy.Partition(false, false)
	waitCaughtUp(t, leader.srv, follower.srv)
	if ok := compareReads(t, client, rts.URL, osrv.URL, testQueries(10, 115)); ok != 10 {
		t.Fatalf("only %d/10 reads after heal", ok)
	}
}

// TestChaosResetMidAckNoDuplicates kills the ack of every write mid-body
// and requires the retry protocol to converge on exactly one row per ID.
func TestChaosResetMidAckNoDuplicates(t *testing.T) {
	const seedRows = 300
	data := dataset.Generate(dataset.Uniform, seedRows, len(testRoles()), 121)
	oracle := newOracle(data, seqIDs(seedRows))
	leader := chaosLeader(t, data, seqIDs(seedRows))

	rt, err := New(Config{
		Partitions: []Partition{{Name: "p0", Leader: leader.url()}},
		Slots:      16, Seed: 1,
		Retries: 4, BackoffBase: 5 * time.Millisecond,
		TryTimeout: 2 * time.Second,
		// No probes during the test window: an armed reset must land on a
		// write ack, not a health check.
		HealthInterval: time.Hour,
		FailAfter:      100, // don't eject the leader for faults we inject
		ReopenAfter:    50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()
	client := &http.Client{}

	extra := dataset.Generate(dataset.Uniform, 10, len(testRoles()), 122)
	for i, row := range extra {
		id := seedRows + i
		// Arm: the next response from the leader dies after ~40 bytes —
		// mid-headers or mid-body, either way after the node may have
		// committed. The router (or this client) must resolve the
		// ambiguity by retrying the same ID.
		leader.proxy.ResetAfterResponseBytes(40)
		ackInsert(t, client, rts.URL, id, row)
		oracle.put(id, row)
	}

	// Exactly one row per ID: a k=everything read matches an oracle holding
	// one copy of each, and the node's total agrees.
	osrv := oracle.server(t)
	q := testQueries(1, 123)[0]
	q.K = seedRows + len(extra) + 50
	if ok := compareReads(t, client, rts.URL, osrv.URL, []sdquery.Query{q}); ok != 1 {
		t.Fatal("read after reset churn did not answer 200")
	}
	if got := leader.srv.Statz().IndexPoints; got != seedRows+len(extra) {
		t.Fatalf("node holds %d rows, want %d — a retry duplicated or lost a write", got, seedRows+len(extra))
	}
}

// waitCaughtUp polls until the follower's applied LSN vector covers the
// leader's (componentwise).
func waitCaughtUp(t *testing.T, leader, follower *serve.Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		ls := leader.Statz().ReplLSNs
		fs := follower.Statz().ReplLSNs
		ok := len(ls) > 0 && len(ls) == len(fs)
		for i := range ls {
			ok = ok && fs[i] >= ls[i]
		}
		if ok {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("follower never caught up: leader %v follower %v",
		leader.Statz().ReplLSNs, follower.Statz().ReplLSNs)
}

func seqIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}
