package router

// Tests for automated leader failover (promotion/demotion), replica-aware
// read balancing, and the write-path regression fixes that rode along:
// explicit-ID allocator adoption, ack-idempotent deletes, and the batch
// terminal-verdict scan.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/serve"
)

// TestChaosPromotionRestoresWrites is the failover differential: a hard
// leader kill mid-churn must end with writes flowing again through an
// automatically promoted replica — no operator action — with every acked
// write still visible, and the old leader demoting cleanly (no split-brain)
// when it rejoins.
func TestChaosPromotionRestoresWrites(t *testing.T) {
	const seedRows = 1_000
	data := dataset.Generate(dataset.Uniform, seedRows, len(testRoles()), 131)
	oracle := newOracle(data, seqIDs(seedRows))

	leader := chaosLeader(t, data, seqIDs(seedRows))
	follower := chaosFollower(t, leader.ts.URL, serve.WithPromotionWALDir(t.TempDir()))

	rt, err := New(Config{
		Partitions: []Partition{{Name: "p0", Leader: leader.url(), Replicas: []string{follower.url()}}},
		Slots:      16, Seed: 1,
		Retries: 3, BackoffBase: 5 * time.Millisecond,
		TryTimeout: 2 * time.Second, HealthInterval: 25 * time.Millisecond,
		FailAfter: 2, ReopenAfter: 200 * time.Millisecond,
		PromoteAfter: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()
	client := &http.Client{}

	// Churn before the kill, so the promotion gate has a real watermark to
	// respect, then let the follower catch up (a promotion may not lose any
	// of these acked writes).
	extra := dataset.Generate(dataset.Uniform, 30, len(testRoles()), 132)
	for i, row := range extra {
		id := seedRows + i
		ackInsert(t, client, rts.URL, id, row)
		oracle.put(id, row)
	}
	waitCaughtUp(t, leader.srv, follower.srv)

	// Hard kill: new connections refused, in-flight ones reset.
	leader.proxy.Refuse(true)
	leader.proxy.KillActive()

	// Write availability must come back on its own: ackInsert retries until
	// the cluster acks, which requires the router to detect the dead leader,
	// wait out PromoteAfter, and promote the follower.
	more := dataset.Generate(dataset.Uniform, 20, len(testRoles()), 133)
	for i, row := range more {
		id := seedRows + len(extra) + i
		ackInsert(t, client, rts.URL, id, row)
		oracle.put(id, row)
	}

	st := rt.Statz()
	if st.Promotions == 0 {
		t.Fatal("writes resumed without a recorded promotion")
	}
	if st.Partitions[0].Generation == 0 {
		t.Fatal("partition generation never advanced past 0")
	}
	if got := follower.srv.Follower(); got != "" {
		t.Fatalf("promoted node still follows %q", got)
	}
	if follower.srv.Generation() == 0 {
		t.Fatal("promoted node still at generation 0")
	}

	// Every read — served by the promoted leader — must be byte-identical
	// to the oracle holding exactly the acked rows, including a k=everything
	// query where any lost acked write would show.
	osrv := oracle.server(t)
	queries := testQueries(20, 134)
	big := testQueries(1, 135)[0]
	big.K = seedRows + len(extra) + len(more) + 10
	queries = append(queries, big)
	if ok := compareReads(t, client, rts.URL, osrv.URL, queries); ok != len(queries) {
		t.Fatalf("only %d/%d reads answered 200 after promotion", ok, len(queries))
	}

	// The old leader rejoins still believing itself the leader of a past
	// generation. The router must demote it — it re-bootstraps as a follower
	// of the new leader — rather than let two writers coexist.
	leader.proxy.Refuse(false)
	deadline := time.Now().Add(10 * time.Second)
	for leader.srv.Follower() == "" {
		if time.Now().After(deadline) {
			t.Fatal("rejoined old leader was never demoted")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got, want := leader.srv.Follower(), follower.url(); got != want {
		t.Fatalf("demoted node follows %q, want the promoted leader %q", got, want)
	}
	if leader.srv.Generation() == 0 {
		t.Fatal("demoted node still at generation 0 — the fence never moved")
	}
	// The node flips to following inside the demote handler, before the
	// router's demote call returns and bumps the counter — poll briefly.
	for rt.Statz().Demotions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no recorded demotion")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Post-demotion writes and reads: still one leader, still byte-identical.
	last := dataset.Generate(dataset.Uniform, 10, len(testRoles()), 136)
	for i, row := range last {
		id := seedRows + len(extra) + len(more) + i
		ackInsert(t, client, rts.URL, id, row)
		oracle.put(id, row)
	}
	osrv2 := oracle.server(t)
	big.K += len(last)
	if ok := compareReads(t, client, rts.URL, osrv2.URL, append(testQueries(10, 137), big)); ok != 11 {
		t.Fatal("reads after demotion did not all answer 200")
	}
}

// TestChaosDeleteAckIdempotent pins the remove ack-idempotency contract: a
// DELETE whose first attempt commits the tombstone but dies mid-ack must
// converge — through the router's same-ID retry — on 200 removed:true, the
// same answer the lost ack carried, not a success-shaped report of failure.
func TestChaosDeleteAckIdempotent(t *testing.T) {
	const seedRows = 300
	data := dataset.Generate(dataset.Uniform, seedRows, len(testRoles()), 141)
	leader := chaosLeader(t, data, seqIDs(seedRows))

	rt, err := New(Config{
		Partitions: []Partition{{Name: "p0", Leader: leader.url()}},
		Slots:      16, Seed: 1,
		Retries: 4, BackoffBase: 5 * time.Millisecond,
		TryTimeout: 2 * time.Second,
		// No probes during the window: the armed reset must land on the
		// delete ack, not a health check.
		HealthInterval: time.Hour,
		FailAfter:      100,
		ReopenAfter:    50 * time.Millisecond,
		PromoteAfter:   time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()
	client := &http.Client{}

	del := func() (int, bool) {
		req, err := http.NewRequest(http.MethodDelete, rts.URL+"/v1/points/7", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := readAllBounded(resp.Body)
		var rm struct {
			Removed bool `json:"removed"`
		}
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(body, &rm); err != nil {
				t.Fatalf("decode remove ack: %v (%s)", err, body)
			}
		}
		return resp.StatusCode, rm.Removed
	}

	// Arm: the next response from the leader dies after ~40 bytes — after
	// the tombstone may have committed. The router's retry hits an
	// already-tombstoned ID and must report the delete's true outcome.
	leader.proxy.ResetAfterResponseBytes(40)
	status, removed := del()
	if status != http.StatusOK || !removed {
		t.Fatalf("delete through mid-ack reset: status %d removed=%v, want 200 removed=true", status, removed)
	}
	if got := leader.srv.Statz().IndexPoints; got != seedRows-1 {
		t.Fatalf("node holds %d rows after delete, want %d", got, seedRows-1)
	}

	// A client-level retry of the whole DELETE gets the same honest answer.
	status, removed = del()
	if status != http.StatusOK || !removed {
		t.Fatalf("retried delete: status %d removed=%v, want 200 removed=true", status, removed)
	}
}

// TestExplicitIDAdvancesAllocator pins the S1 fix: a committed
// client-supplied ID must lift the router's global ID allocator above it,
// or a later auto-allocated insert re-issues an ID the cluster has already
// promised to someone else.
func TestExplicitIDAdvancesAllocator(t *testing.T) {
	data := dataset.Generate(dataset.Uniform, 100, len(testRoles()), 151)
	rt, _ := clusterFromRows(t, data, []string{"solo"}, 16)
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()
	client := &http.Client{}

	rows := dataset.Generate(dataset.Uniform, 3, len(testRoles()), 152)

	// Seed the allocator first with a plain auto-allocated insert: the bug
	// only bites once the counter is live — a later seed scan would happen
	// to cover the explicit ID and hide it.
	seedBody, _ := json.Marshal(map[string]any{"point": rows[0]})
	if status, out := postBody(t, client, rts.URL+"/v1/insert", seedBody); status != http.StatusOK {
		t.Fatalf("seeding insert: status %d: %s", status, out)
	}

	const explicit = 5_000
	body, _ := json.Marshal(map[string]any{"id": explicit, "point": rows[1]})
	if status, out := postBody(t, client, rts.URL+"/v1/insert", body); status != http.StatusOK {
		t.Fatalf("explicit-id insert: status %d: %s", status, out)
	}

	// The next auto-allocated ID must mint above the explicit one; before
	// the fix the live counter never learned about it and the allocator was
	// marching straight at a guaranteed future collision.
	body2, _ := json.Marshal(map[string]any{"point": rows[2]})
	status, out := postBody(t, client, rts.URL+"/v1/insert", body2)
	if status != http.StatusOK {
		t.Fatalf("auto-id insert: status %d: %s", status, out)
	}
	var ins struct {
		ID int `json:"id"`
	}
	if err := json.Unmarshal(out, &ins); err != nil {
		t.Fatal(err)
	}
	if ins.ID <= explicit {
		t.Fatalf("auto-allocated id %d is not above the committed explicit id %d", ins.ID, explicit)
	}
}

// TestTerminalVerdictScan pins the S3 fix in both read handlers: every
// failed partition counts exactly once in partitionFailures, and a terminal
// 4xx from any partition is relayed even when another partition failed
// retryably first (handleBatch used to answer 503 for that mix).
func TestTerminalVerdictScan(t *testing.T) {
	newNode := func(status int, body string) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			fmt.Fprintln(w, body)
		}))
	}
	newRT := func(t *testing.T, parts []Partition) *Router {
		t.Helper()
		rt, err := New(Config{
			Partitions: parts,
			Slots:      8, Seed: 1,
			Retries:    -1, // one attempt — the verdicts are deterministic
			TryTimeout: time.Second,
			// Keep probes out of the way: this test pins handler logic.
			HealthInterval: time.Hour, FailAfter: 100, PromoteAfter: time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rt.Close)
		return rt
	}
	topk := []byte(`{"point":[0.5,0.5,0.5,0.5],"k":3,"roles":["r","a","r","a"],"weights":[1,1,1,1]}`)
	batch := []byte(fmt.Sprintf(`{"queries":[%s]}`, topk))

	t.Run("terminal after transient", func(t *testing.T) {
		// Partition 0 fails retryably, partition 1 answers a terminal 404:
		// both handlers must relay the 404, not mask it with 503.
		transient := newNode(http.StatusInternalServerError, `{"error":"boom"}`)
		defer transient.Close()
		terminal := newNode(http.StatusNotFound, `{"error":"no such thing"}`)
		defer terminal.Close()
		rt := newRT(t, []Partition{{Name: "a", Leader: transient.URL}, {Name: "b", Leader: terminal.URL}})
		rts := httptest.NewServer(rt.Handler())
		defer rts.Close()
		client := &http.Client{}

		for _, ep := range []struct {
			path string
			body []byte
		}{{"/v1/topk", topk}, {"/v1/batch", batch}} {
			status, out := postBody(t, client, rts.URL+ep.path, ep.body)
			if status != http.StatusNotFound {
				t.Fatalf("%s: status %d, want the terminal 404 relayed: %s", ep.path, status, out)
			}
			if !bytes.Contains(out, []byte("no such thing")) {
				t.Fatalf("%s: terminal body not relayed verbatim: %s", ep.path, out)
			}
		}
	})

	t.Run("every failed partition counts", func(t *testing.T) {
		// Terminal first, transient second: the early-relay path used to
		// stop counting at the terminal partition.
		terminal := newNode(http.StatusNotFound, `{"error":"gone"}`)
		defer terminal.Close()
		transient := newNode(http.StatusInternalServerError, `{"error":"boom"}`)
		defer transient.Close()
		rt := newRT(t, []Partition{{Name: "a", Leader: terminal.URL}, {Name: "b", Leader: transient.URL}})
		rts := httptest.NewServer(rt.Handler())
		defer rts.Close()
		client := &http.Client{}

		if status, _ := postBody(t, client, rts.URL+"/v1/topk", topk); status != http.StatusNotFound {
			t.Fatalf("topk status %d, want 404", status)
		}
		if got := rt.Statz().PartitionFailures; got != 2 {
			t.Fatalf("partitionFailures after topk = %d, want 2 (one per failed partition)", got)
		}
		if status, _ := postBody(t, client, rts.URL+"/v1/batch", batch); status != http.StatusNotFound {
			t.Fatalf("batch status %d, want 404", status)
		}
		if got := rt.Statz().PartitionFailures; got != 4 {
			t.Fatalf("partitionFailures after batch = %d, want 4", got)
		}
	})
}

// TestWriteQueueCancellationStorm hammers the per-partition write queue
// with concurrent tickets whose holders randomly abandon while waiting
// (run under -race in CI). Invariants: the queue never wedges, and the
// holders that do get their turn get it in strict ticket order — the
// ordering contract that keeps retried inserts provably idempotent.
func TestWriteQueueCancellationStorm(t *testing.T) {
	q := newWriteQueue()
	const n = 400
	rng := rand.New(rand.NewSource(7))
	abandon := make([]int, n) // 0 = hold, 1 = cancel now, 2 = cancel later
	for i := range abandon {
		abandon[i] = rng.Intn(3)
	}
	var mu sync.Mutex
	var order []uint64
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tk := q.enqueue()
			ctx := context.Background()
			if abandon[g] != 0 {
				cctx, cancel := context.WithCancel(ctx)
				if abandon[g] == 1 {
					cancel()
				} else {
					time.AfterFunc(time.Duration(g%7)*time.Millisecond, cancel)
				}
				defer cancel()
				ctx = cctx
			}
			if err := q.await(ctx, tk); err != nil {
				// Abandoned tickets must release through the same path or
				// every later ticket wedges behind them.
				q.release(tk)
				return
			}
			mu.Lock()
			order = append(order, tk)
			mu.Unlock()
			q.release(tk)
		}(g)
	}
	wg.Wait()
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatalf("turns granted out of ticket order: %d after %d", order[i], order[i-1])
		}
	}
	// The partition is not wedged: a fresh ticket gets its turn promptly.
	tk := q.enqueue()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := q.await(ctx, tk); err != nil {
		t.Fatalf("queue wedged after the storm: %v", err)
	}
	q.release(tk)
}

// TestBreakerHalfOpenReBuy pins the half-open discipline: a failed
// half-open probe re-stamps the trip time, buying a FULL ReopenAfter of
// ejection — not a free pass back into rotation.
func TestBreakerHalfOpenReBuy(t *testing.T) {
	n := &node{url: "http://test"}
	const failAfter = 2
	reopen := 300 * time.Millisecond

	n.fail(failAfter)
	n.fail(failAfter)
	if n.available(reopen) {
		t.Fatal("tripped breaker still admits traffic")
	}
	time.Sleep(reopen + 50*time.Millisecond)
	if !n.available(reopen) {
		t.Fatal("breaker never went half-open")
	}

	// The half-open probe fails: the node must be ejected for another full
	// window, measured from now.
	n.fail(failAfter)
	if n.available(reopen) {
		t.Fatal("failed half-open probe did not re-trip the breaker")
	}
	time.Sleep(reopen / 2)
	if n.available(reopen) {
		t.Fatal("re-tripped breaker reopened after only half a window")
	}
	time.Sleep(reopen/2 + 50*time.Millisecond)
	if !n.available(reopen) {
		t.Fatal("re-tripped breaker never reopened")
	}
	n.ok()
	if !n.healthy() {
		t.Fatal("ok() did not close the breaker")
	}
}

// TestReadBalancingHitsReplicas pins the load-balancing half of the
// tentpole: with every node healthy and hedging disabled, steady-state
// reads must reach the replica (replicaReads > 0) while every answer stays
// byte-identical to the oracle — the freshness gate still holds.
func TestReadBalancingHitsReplicas(t *testing.T) {
	const seedRows = 600
	data := dataset.Generate(dataset.Uniform, seedRows, len(testRoles()), 161)
	oracle := newOracle(data, seqIDs(seedRows))
	leader := chaosLeader(t, data, seqIDs(seedRows))
	follower := chaosFollower(t, leader.ts.URL)

	rt, err := New(Config{
		Partitions: []Partition{{Name: "p0", Leader: leader.url(), Replicas: []string{follower.url()}}},
		Slots:      16, Seed: 1,
		Retries: 2, BackoffBase: 5 * time.Millisecond,
		TryTimeout: 2 * time.Second, HealthInterval: 25 * time.Millisecond,
		FailAfter: 3, ReopenAfter: 300 * time.Millisecond,
		PromoteAfter: time.Hour,
		HedgeDelay:   -1, // no hedging: any replica read below is balancing
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()
	client := &http.Client{}

	// Writes through the router raise the watermark, so the replica reads
	// below also exercise the freshness qualification, not an empty gate.
	extra := dataset.Generate(dataset.Uniform, 15, len(testRoles()), 162)
	for i, row := range extra {
		id := seedRows + i
		ackInsert(t, client, rts.URL, id, row)
		oracle.put(id, row)
	}
	waitCaughtUp(t, leader.srv, follower.srv)

	osrv := oracle.server(t)
	queries := testQueries(40, 163)
	if ok := compareReads(t, client, rts.URL, osrv.URL, queries); ok != len(queries) {
		t.Fatalf("only %d/%d balanced reads answered 200", ok, len(queries))
	}
	if got := rt.Statz().ReplicaReads; got == 0 {
		t.Fatal("no steady-state read ever reached the replica — balancing is not happening")
	}
}
