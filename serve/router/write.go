package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Distributed writes. The router owns ID assignment: every insert gets a
// cluster-unique, globally ascending ID before it is forwarded, and the ID
// picks the owning partition through the rendezvous table. That one
// decision buys the two properties distributed writes need:
//
//   - Idempotent retries. A timeout leaves a write ambiguous — maybe the
//     node committed it, maybe not. The router retries the identical
//     {id, point} body; the node answers 200 for a proven duplicate (same
//     ID, same coordinates) and 409 for a genuine collision, so a retry can
//     never double-insert and can never silently clobber.
//   - Exact reads. IDs are the global row identity, so a scatter-gathered
//     top-k carries the same IDs a single node over all rows would.
//
// Writes go to the owning partition's leader only — followers refuse them —
// and are never hedged: retrying under the same ID is the safe way to
// resolve ambiguity, racing two copies is not (both could commit, which is
// harmless here but wasteful, and remove has no such shield).
//
// The ID counter seeds lazily from the cluster itself (max index_id_space
// over every partition's /statz) so a restarted router continues above
// every ID any node has seen, then advances locally. One router owns writes
// at a time — the standard single-writer deployment; running two writers
// risks 409s, not corruption.
//
// Inserts bound for one partition are forwarded in ID-allocation order
// (writeQueue): a node admits a caller-assigned ID only above its current
// ID space, so if id N+1 committed before id N arrived, N would be
// rejected as ErrIDExists against an empty gap slot and a legitimate
// single-writer insert would die with a spurious 409. Each insert claims
// its partition's next queue ticket in the same critical section that
// assigns its ID, then waits for every earlier ticket to finish (forward,
// retries and all) before its own forward starts. Cross-partition writes
// stay concurrent; within a partition, ordering is the price of the strict
// ascending-ID contract that makes retries provably idempotent.

// writeQueue is a FIFO ticket lock: tickets are handed out in order, and a
// ticket's holder may proceed only once every earlier ticket was released.
// Abandoned tickets (holder's context ended while waiting) release through
// the same path, so one canceled insert never wedges the partition.
type writeQueue struct {
	mu       sync.Mutex
	next     uint64 // next ticket to hand out
	serving  uint64 // lowest ticket not yet released
	released map[uint64]bool
	waiters  map[uint64]chan struct{}
}

func newWriteQueue() *writeQueue {
	return &writeQueue{
		released: make(map[uint64]bool),
		waiters:  make(map[uint64]chan struct{}),
	}
}

// enqueue hands out the next ticket. Every ticket must eventually be
// released, whether or not its turn was awaited.
func (q *writeQueue) enqueue() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	t := q.next
	q.next++
	return t
}

// await blocks until every ticket before t is released, or ctx ends.
func (q *writeQueue) await(ctx context.Context, t uint64) error {
	q.mu.Lock()
	if q.serving == t {
		q.mu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	q.waiters[t] = ch
	q.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		q.mu.Lock()
		delete(q.waiters, t)
		q.mu.Unlock()
		return ctx.Err()
	}
}

// release retires ticket t and wakes the next in-order waiter once every
// ticket below it is retired.
func (q *writeQueue) release(t uint64) {
	q.mu.Lock()
	q.released[t] = true
	for q.released[q.serving] {
		delete(q.released, q.serving)
		q.serving++
		if ch, ok := q.waiters[q.serving]; ok {
			close(ch)
			delete(q.waiters, q.serving)
		}
	}
	q.mu.Unlock()
}

// seedIDs initializes the global ID counter from the cluster (idempotent,
// cheap after the first call).
func (rt *Router) seedIDs(ctx context.Context) error {
	if rt.nextID.Load() >= 0 {
		return nil
	}
	rt.idMu.Lock()
	defer rt.idMu.Unlock()
	if rt.nextID.Load() >= 0 {
		return nil
	}
	max := 0
	for _, p := range rt.parts {
		space, err := rt.idSpaceOf(ctx, p)
		if err != nil {
			rt.met.idAllocFails.Add(1)
			return fmt.Errorf("router: cannot seed IDs: partition %s: %w", p.name, err)
		}
		if space > max {
			max = space
		}
	}
	rt.nextID.Store(int64(max))
	return nil
}

// idSpaceOf asks one partition's leader how large its ID space is.
func (rt *Router) idSpaceOf(ctx context.Context, p *partition) (int, error) {
	topo := p.topo.Load()
	data, err := rt.fetchOn(ctx, topo, topo.leader, http.MethodGet, "/statz", nil, nil)
	if err != nil {
		return 0, err
	}
	var st struct {
		IDSpace int `json:"index_id_space"`
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return 0, err
	}
	return st.IDSpace, nil
}

// allocWrite hands out the next cluster-unique ID and claims the owner
// partition's write ticket in the same critical section: allocation order
// and per-partition forwarding order can therefore never disagree, which is
// what keeps concurrent inserts from reaching a leader with reordered IDs.
func (rt *Router) allocWrite(ctx context.Context) (int, *partition, uint64, error) {
	if err := rt.seedIDs(ctx); err != nil {
		return 0, nil, 0, err
	}
	rt.idMu.Lock()
	id := int(rt.nextID.Add(1) - 1)
	p := rt.owner(id)
	ticket := p.wq.enqueue()
	rt.idMu.Unlock()
	return id, p, ticket, nil
}

// writeToLeader sends one mutation to the partition's leader with the
// retry/backoff discipline (no hedging; see the package comment). Returns
// the node's response body and headers on 200.
func (rt *Router) writeToLeader(ctx context.Context, p *partition, method, path string, body []byte) ([]byte, http.Header, error) {
	var lastErr error
	backoff := rt.cfg.BackoffBase
	for attempt := 0; attempt <= rt.cfg.Retries; attempt++ {
		if attempt > 0 {
			rt.met.retries.Add(1)
			select {
			case <-ctx.Done():
				return nil, nil, ctx.Err()
			case <-time.After(rt.jitter(backoff)):
			}
			if backoff *= 2; backoff > rt.cfg.BackoffCap {
				backoff = rt.cfg.BackoffCap
			}
		}
		// Load the topology per attempt: a promotion mid-write re-points the
		// leader, and the retry should go to the new one.
		topo := p.topo.Load()
		if !topo.leader.available(rt.cfg.ReopenAfter) {
			lastErr = fmt.Errorf("router: partition %s leader is ejected", p.name)
			continue
		}
		data, hdr, err := rt.writeOn(ctx, p, topo, method, path, body)
		if err == nil {
			return data, hdr, nil
		}
		var te *terminalError
		if errors.As(err, &te) {
			return nil, nil, err
		}
		lastErr = err
	}
	return nil, nil, lastErr
}

// writeOn is one bounded write attempt against the topology's leader,
// lifting the partition's high-watermark from the ack's LSN vector on
// success. The request is stamped with the topology generation — a node at
// any other generation refuses it with 503 — and the ack's generation is
// validated against the partition's CURRENT generation before the write is
// trusted: if a promotion landed while this write was in flight, the ack
// came from a deposed leader whose unreplicated tail will be discarded on
// demote, so the outcome is treated as an ambiguous failure and retried
// against the new regime instead of acknowledged to the client.
func (rt *Router) writeOn(ctx context.Context, p *partition, topo *topology, method, path string, body []byte) ([]byte, http.Header, error) {
	leader := topo.leader
	tctx, cancel := context.WithTimeout(ctx, rt.cfg.TryTimeout)
	defer cancel()
	req, err := newBodyRequest(tctx, method, leader.url+path, body)
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("X-SD-Generation", strconv.FormatUint(topo.gen, 10))
	resp, err := rt.client.Do(req)
	if err != nil {
		leader.fail(int32(rt.cfg.FailAfter))
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := readAllBounded(resp.Body)
	if err != nil {
		leader.fail(int32(rt.cfg.FailAfter))
		return nil, nil, err
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		leader.ok()
		if ag := resp.Header.Get("X-SD-Generation"); ag != "" {
			if cur := p.topo.Load().gen; ag != strconv.FormatUint(cur, 10) {
				return nil, nil, fmt.Errorf("router: %s acked under generation %s but the partition moved to %d; retrying against the new leader", leader.url, ag, cur)
			}
		}
		p.raiseHW(parseLSNs(resp.Header.Get("X-SD-Repl-Lsns")))
		return data, resp.Header, nil
	case resp.StatusCode >= http.StatusInternalServerError,
		resp.StatusCode == http.StatusTooManyRequests,
		resp.StatusCode == http.StatusServiceUnavailable:
		leader.fail(int32(rt.cfg.FailAfter))
		return nil, nil, fmt.Errorf("router: %s answered %d", leader.url, resp.StatusCode)
	default:
		// 409 included: a conflicting occupant is a real error the client
		// must see, never something a retry may paper over.
		return nil, nil, &terminalError{status: resp.StatusCode, body: data}
	}
}

func (rt *Router) handleInsert(w http.ResponseWriter, r *http.Request) {
	rt.met.writes.Add(1)
	body, err := readBody(w, r)
	if err != nil {
		rt.met.errors4xx.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var wi struct {
		Point []float64 `json:"point"`
		ID    *int      `json:"id"`
	}
	if err := json.Unmarshal(body, &wi); err != nil {
		rt.met.errors4xx.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode insert: %w", err))
		return
	}
	var id int
	var p *partition
	var ticket uint64
	if wi.ID != nil {
		// A client-supplied ID (a retry of its own, or an external ID
		// authority) routes like any other; the node still proves
		// idempotence or conflicts. It joins the owner's write queue at the
		// point it arrives.
		id = *wi.ID
		if id < 0 {
			rt.met.errors4xx.Add(1)
			writeError(w, http.StatusBadRequest, fmt.Errorf("router: id must be non-negative"))
			return
		}
		p = rt.owner(id)
		ticket = p.wq.enqueue()
	} else {
		id, p, ticket, err = rt.allocWrite(r.Context())
		if err != nil {
			rt.met.unavailable.Add(1)
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
	}
	defer p.wq.release(ticket)
	fwd, err := json.Marshal(struct {
		Point []float64 `json:"point"`
		ID    int       `json:"id"`
	}{Point: wi.Point, ID: id})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	// Wait for every earlier insert bound for this partition to finish, so
	// the leader sees IDs in allocation order (see the package comment).
	if err := p.wq.await(r.Context(), ticket); err != nil {
		rt.met.unavailable.Add(1)
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	data, _, err := rt.writeToLeader(r.Context(), p, http.MethodPost, "/v1/insert", fwd)
	if err != nil {
		rt.relayWriteErr(w, err)
		return
	}
	if wi.ID != nil {
		rt.adoptExplicitID(r.Context(), id)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// adoptExplicitID lifts the global ID allocator above a committed
// client-supplied ID. Without it the counter never learns about explicit
// IDs, and a later auto-allocated insert re-issues one of them — the node
// then answers 409 (or worse, 200-duplicate for an identical point) for a
// write the router just minted as fresh.
func (rt *Router) adoptExplicitID(ctx context.Context, id int) {
	// Seed first: CAS-maxing an unseeded counter (-1) would make seedIDs
	// believe seeding already happened and skip the cluster-wide scan. If
	// seeding fails, skip the adoption — the explicit ID just committed, so
	// the eventual seed scan will see an ID space above it anyway.
	if err := rt.seedIDs(ctx); err != nil {
		return
	}
	for {
		cur := rt.nextID.Load()
		if cur >= int64(id)+1 {
			return
		}
		if rt.nextID.CompareAndSwap(cur, int64(id)+1) {
			return
		}
	}
}

func (rt *Router) handleRemove(w http.ResponseWriter, r *http.Request) {
	rt.met.writes.Add(1)
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		rt.met.errors4xx.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("point id %q: %w", r.PathValue("id"), err))
		return
	}
	if id < 0 {
		rt.met.errors4xx.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("router: id must be non-negative"))
		return
	}
	data, _, err := rt.writeToLeader(r.Context(), rt.owner(id), http.MethodDelete, "/v1/points/"+strconv.Itoa(id), nil)
	if err != nil {
		rt.relayWriteErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// relayWriteErr maps a writeToLeader failure onto the client response:
// terminal node verdicts pass through with their status, everything else is
// 503 (the write may or may not have committed — the client retries, and
// idempotent IDs make that safe).
func (rt *Router) relayWriteErr(w http.ResponseWriter, err error) {
	var te *terminalError
	if errors.As(err, &te) {
		rt.relayTerminal(w, te)
		return
	}
	rt.met.unavailable.Add(1)
	writeError(w, http.StatusServiceUnavailable, err)
}
