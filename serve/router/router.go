package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Partition names one leader group: the leader every write for its slots
// goes to, plus the read replicas (followers of that leader) reads may
// fail over or hedge to.
type Partition struct {
	Name     string
	Leader   string
	Replicas []string
}

// Config configures a Router. Zero values take the documented defaults.
type Config struct {
	// Partitions is the cluster topology. Required, at least one.
	Partitions []Partition
	// Slots is the rendezvous slot count the ID space folds into (default
	// 64). All routers over one cluster must agree on it.
	Slots int
	// TryTimeout bounds each individual attempt (default 2s).
	TryTimeout time.Duration
	// Retries is how many times a failed attempt is retried, with
	// exponential backoff from BackoffBase (default 10ms) capped at
	// BackoffCap (default 500ms), jittered ±50%. The zero value takes the
	// default of 2 (3 attempts total); any negative value disables retries
	// entirely (1 attempt). The sdrouter -retries flag translates 0 to the
	// negative sentinel, so "-retries 0" means what it says.
	Retries     int
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// HedgeDelay is how long a read waits on its primary before racing a
	// second copy against a replica. 0 (default) adapts per node — the
	// node's observed p99 — so hedges fire exactly when a try is slower
	// than that node usually is; negative disables hedging.
	HedgeDelay time.Duration
	// HealthInterval is the active health-check cadence (default 250ms);
	// FailAfter consecutive failures eject a node (default 3) until
	// ReopenAfter has passed (default 1s), after which it is half-open.
	HealthInterval time.Duration
	FailAfter      int
	ReopenAfter    time.Duration
	// PromoteAfter is how long a partition's leader must stay continuously
	// unhealthy before the router promotes the most caught-up live replica
	// to leader (default 3s; negative disables automated promotion, leaving
	// the partition write-unavailable until an operator intervenes). The
	// promotion protocol is generation-fenced end to end — see health.go.
	PromoteAfter time.Duration
	// NoReadBalance disables replica-aware read load balancing: with it set,
	// steady-state reads always prefer the leader (replicas serve only
	// hedges and failover), the pre-balancing behavior. Default off —
	// reads spread across freshness-qualified nodes by power-of-two-choices
	// on observed latency.
	NoReadBalance bool
	// Seed fixes the jitter RNG for deterministic tests (0 = time-seeded).
	Seed int64
	// Transport overrides the HTTP transport (tests inject faults here).
	Transport http.RoundTripper
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Slots == 0 {
		out.Slots = 64
	}
	if out.TryTimeout <= 0 {
		out.TryTimeout = 2 * time.Second
	}
	if out.Retries == 0 {
		out.Retries = 2
	}
	if out.Retries < 0 {
		out.Retries = 0
	}
	if out.BackoffBase <= 0 {
		out.BackoffBase = 10 * time.Millisecond
	}
	if out.BackoffCap <= 0 {
		out.BackoffCap = 500 * time.Millisecond
	}
	if out.HealthInterval <= 0 {
		out.HealthInterval = 250 * time.Millisecond
	}
	if out.FailAfter <= 0 {
		out.FailAfter = 3
	}
	if out.ReopenAfter <= 0 {
		out.ReopenAfter = time.Second
	}
	if out.PromoteAfter == 0 {
		out.PromoteAfter = 3 * time.Second
	}
	return out
}

// topology is one partition's immutable leader/replica assignment under one
// generation. Promotion installs a whole new topology with one atomic
// pointer store — readers and writers always see a consistent (generation,
// leader, replicas) triple, never a torn mix of two regimes. The node
// objects themselves persist across topologies, so breaker and latency
// state survives a role change.
type topology struct {
	// gen is the partition's fencing generation: 0 at startup, bumped by
	// every promotion. Writes are stamped with it and acks validated
	// against it (write.go); nodes refuse writes from any other generation.
	gen      uint64
	leader   *node
	replicas []*node
}

func (t *topology) nodes() []*node {
	out := make([]*node, 0, 1+len(t.replicas))
	out = append(out, t.leader)
	return append(out, t.replicas...)
}

// partition is the runtime state behind one Partition.
type partition struct {
	name string
	topo atomic.Pointer[topology]

	// wq orders in-flight inserts so they reach the leader in ID-allocation
	// order — the node's ID-space contract requires it (write.go).
	wq *writeQueue

	// leaderDown stamps (unix nanos) when the current leader was first seen
	// unhealthy by the prober; 0 while healthy. The promotion deadline is
	// measured against it (health.go).
	leaderDown atomic.Int64
	// promoting and demoting each guard one admin call in flight per
	// partition — probes fire every HealthInterval, the calls take longer.
	promoting atomic.Bool
	demoting  atomic.Bool
	// maxGen tracks the highest generation any of this partition's nodes
	// has ever reported — promotions allocate above it, so a promote whose
	// ack was lost (node at G, topology still behind) can never seed two
	// nodes with the same generation.
	maxGen atomic.Uint64

	// hw is the write high-watermark: the componentwise max of the
	// X-SD-Repl-Lsns vectors on this partition's write acks through this
	// router. A replica may answer a read only when its own vector covers
	// hw — the read-your-writes guarantee across failover.
	hwMu sync.Mutex
	hw   []uint64
}

func (p *partition) hwVector() []uint64 {
	p.hwMu.Lock()
	defer p.hwMu.Unlock()
	return append([]uint64(nil), p.hw...)
}

// raiseHW lifts the watermark to cover v (componentwise max).
func (p *partition) raiseHW(v []uint64) {
	if len(v) == 0 {
		return
	}
	p.hwMu.Lock()
	for len(p.hw) < len(v) {
		p.hw = append(p.hw, 0)
	}
	for i, x := range v {
		if x > p.hw[i] {
			p.hw[i] = x
		}
	}
	p.hwMu.Unlock()
}

// routerMetrics are the router's own counters (served on /statz, /metrics).
type routerMetrics struct {
	reads, writes           atomic.Uint64
	retries, hedges         atomic.Uint64
	replicaReads            atomic.Uint64 // reads answered by a non-leader
	staleRejects            atomic.Uint64 // replica answers too stale for hw
	degraded                atomic.Uint64 // allow_partial responses served
	partitionFailures       atomic.Uint64 // partition-level fetch failures
	unavailable             atomic.Uint64 // requests answered 503
	errors4xx, idAllocFails atomic.Uint64
	promotions              atomic.Uint64 // replicas promoted to leader
	demotions               atomic.Uint64 // stale leaders demoted to follower
}

// Router scatter-gathers a cluster of serve.Server nodes. Create with New,
// mount Handler, stop with Close.
type Router struct {
	cfg         Config
	parts       []*partition
	table       []int // slot → partition index (rendezvous)
	client      *http.Client
	probeClient *http.Client
	met         routerMetrics

	rngMu sync.Mutex
	rng   *rand.Rand

	idMu   sync.Mutex
	nextID atomic.Int64 // next global ID to assign; -1 until seeded

	quit chan struct{}
	done chan struct{}
}

// New validates the topology, builds the slot table, and starts the active
// health checker.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	names := make([]string, len(cfg.Partitions))
	parts := make([]*partition, len(cfg.Partitions))
	for i, pc := range cfg.Partitions {
		if pc.Leader == "" {
			return nil, fmt.Errorf("router: partition %q has no leader", pc.Name)
		}
		names[i] = pc.Name
		p := &partition{name: pc.Name, wq: newWriteQueue()}
		topo := &topology{leader: &node{url: strings.TrimRight(pc.Leader, "/")}}
		for _, ru := range pc.Replicas {
			topo.replicas = append(topo.replicas, &node{url: strings.TrimRight(ru, "/")})
		}
		p.topo.Store(topo)
		parts[i] = p
	}
	table, err := rendezvousOwners(names, cfg.Slots)
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	transport := cfg.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	rt := &Router{
		cfg:         cfg,
		parts:       parts,
		table:       table,
		client:      &http.Client{Transport: transport},
		probeClient: &http.Client{Transport: transport, Timeout: cfg.TryTimeout / 2},
		rng:         rand.New(rand.NewSource(seed)),
		quit:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	rt.nextID.Store(-1)
	go rt.healthLoop()
	return rt, nil
}

// Close stops the health checker.
func (rt *Router) Close() {
	select {
	case <-rt.quit:
	default:
		close(rt.quit)
	}
	<-rt.done
}

// owner maps a global ID to its partition.
func (rt *Router) owner(id int) *partition {
	return rt.parts[rt.table[id%len(rt.table)]]
}

// Handler returns the router's HTTP handler — the same client surface as a
// single serve.Server, minus admin and stats=true.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/topk", rt.handleTopK)
	mux.HandleFunc("POST /v1/batch", rt.handleBatch)
	mux.HandleFunc("POST /v1/insert", rt.handleInsert)
	mux.HandleFunc("DELETE /v1/points/{id}", rt.handleRemove)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /statz", rt.handleStatz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return mux
}

// jitter spreads a backoff delay over [d/2, 3d/2) so synchronized retries
// from many clients decorrelate.
func (rt *Router) jitter(d time.Duration) time.Duration {
	rt.rngMu.Lock()
	f := 0.5 + rt.rng.Float64()
	rt.rngMu.Unlock()
	return time.Duration(float64(d) * f)
}

// terminalError marks a failure retrying cannot fix (the request itself is
// bad, or the cluster state contradicts it).
type terminalError struct {
	status int
	body   []byte
}

func (e *terminalError) Error() string {
	return fmt.Sprintf("node answered %d: %s", e.status, bytes.TrimSpace(e.body))
}

// relayTerminal passes a node's terminal verdict through verbatim — its
// status code and its error body — so the client sees exactly what a single
// node would have answered (a 404 stays 404, a 413 stays 413).
func (rt *Router) relayTerminal(w http.ResponseWriter, te *terminalError) {
	rt.met.errors4xx.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(te.status)
	w.Write(te.body)
}

var (
	errNoCandidates = errors.New("router: no live nodes in partition")
	errStale        = errors.New("router: replica is staler than the partition's write watermark")
)

const maxBody = 8 << 20

// parseLSNs decodes an X-SD-Repl-Lsns header ("" → nil).
func parseLSNs(h string) []uint64 {
	if h == "" {
		return nil
	}
	fields := strings.Split(h, ",")
	out := make([]uint64, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
		if err != nil {
			return nil
		}
		out = append(out, v)
	}
	return out
}

// vectorCovers reports a ≥ b componentwise (the freshness order). An empty
// b is covered by anything; a shorter a cannot cover a longer b.
func vectorCovers(a, b []uint64) bool {
	if len(b) == 0 {
		return true
	}
	if len(a) < len(b) {
		return false
	}
	for i := range b {
		if a[i] < b[i] {
			return false
		}
	}
	return true
}

// readCandidates orders the nodes a read may use under one topology,
// admitting only nodes the breaker allows. Qualified nodes come first: the
// leader (definitionally fresh) and every replica whose last-reported LSN
// vector covers hw — or that has never reported one, so it deserves a try.
// Known-stale replicas go last: they cannot answer a read-your-writes query
// now, but keeping them reachable lets a retry refresh their vector once
// they catch up. attempt rotates the order so consecutive retries move on
// instead of hammering the same dead node.
func (rt *Router) readCandidates(topo *topology, hw []uint64, attempt int) []*node {
	var cands, stale []*node
	if topo.leader.available(rt.cfg.ReopenAfter) {
		cands = append(cands, topo.leader)
	}
	for _, r := range topo.replicas {
		if !r.available(rt.cfg.ReopenAfter) {
			continue
		}
		if v, seen := r.lastLSNs(); seen && !vectorCovers(v, hw) {
			stale = append(stale, r)
			continue
		}
		cands = append(cands, r)
	}
	if len(cands) > 1 {
		if attempt == 0 && !rt.cfg.NoReadBalance {
			rt.balance(cands)
		} else if attempt > 0 {
			rot := attempt % len(cands)
			cands = append(cands[rot:], cands[:rot]...)
		}
	}
	return append(cands, stale...)
}

// balance applies power-of-two-choices to the qualified candidates: sample
// two distinct nodes, make the one with the lower median observed latency
// the primary and the other the hedge (positions 0 and 1). Randomizing the
// pair spreads steady-state reads across leader and fresh replicas instead
// of pinning them all on the leader; choosing the better of two keeps the
// spread from loading a slow node — the classic balanced-allocations result.
func (rt *Router) balance(cands []*node) {
	rt.rngMu.Lock()
	i := rt.rng.Intn(len(cands))
	j := rt.rng.Intn(len(cands) - 1)
	rt.rngMu.Unlock()
	if j >= i {
		j++
	}
	if cands[j].lat.quantile(0.5) < cands[i].lat.quantile(0.5) {
		i, j = j, i
	}
	cands[0], cands[i] = cands[i], cands[0]
	if j == 0 {
		// The loser originally sat where the winner landed.
		j = i
	}
	cands[1], cands[j] = cands[j], cands[1]
}

// fetchOn runs one bounded attempt against one node and applies the breaker
// and freshness disciplines. Returns the response body on 200.
func (rt *Router) fetchOn(ctx context.Context, topo *topology, n *node, method, path string, body []byte, hw []uint64) ([]byte, error) {
	tctx, cancel := context.WithTimeout(ctx, rt.cfg.TryTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(tctx, method, n.url+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	t0 := time.Now()
	resp, err := rt.client.Do(req)
	if err != nil {
		n.fail(int32(rt.cfg.FailAfter))
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		// A mid-body reset lands here: the node (or the path to it) broke
		// after committing to a response. Blame it like a connect failure.
		n.fail(int32(rt.cfg.FailAfter))
		return nil, err
	}
	n.lat.observe(time.Since(t0))
	switch {
	case resp.StatusCode == http.StatusOK:
	case resp.StatusCode >= http.StatusInternalServerError || resp.StatusCode == http.StatusTooManyRequests:
		// 5xx and backpressure: the node can't serve this now; retryable,
		// and consecutive ones trip the breaker.
		n.fail(int32(rt.cfg.FailAfter))
		return nil, fmt.Errorf("router: %s answered %d", n.url, resp.StatusCode)
	default:
		// Other 4xx: the request is the problem, not the node. Terminal.
		return nil, &terminalError{status: resp.StatusCode, body: data}
	}
	n.ok()
	if n != topo.leader {
		// A replica's answer is admissible only when its snapshot covers
		// every write this router has acknowledged for the partition. Either
		// way the reported vector refreshes the node's freshness cache, which
		// read candidate selection consults (readCandidates).
		v := parseLSNs(resp.Header.Get("X-SD-Repl-Lsns"))
		if v != nil {
			n.setLSNs(v)
		}
		if !vectorCovers(v, hw) {
			rt.met.staleRejects.Add(1)
			return nil, errStale
		}
		rt.met.replicaReads.Add(1)
	}
	return data, nil
}

// hedgeDelay picks how long a read waits on primary before racing a second
// copy: the configured delay, or adaptively the node's own recent p99
// (bounded to [1ms, TryTimeout/2]). 0 disables.
func (rt *Router) hedgeDelay(primary *node) time.Duration {
	if rt.cfg.HedgeDelay < 0 {
		return 0
	}
	d := rt.cfg.HedgeDelay
	if d == 0 {
		d = primary.lat.quantile(0.99)
		if d == 0 {
			d = rt.cfg.TryTimeout / 4
		}
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if max := rt.cfg.TryTimeout / 2; d > max {
		d = max
	}
	return d
}

// hedgedFetch races primary against hedge (if any): the hedge launches when
// the primary exceeds its hedge delay, or immediately when the primary
// fails. First success wins; the loser is cancelled. Reads are the only
// hedged operations — writes go through writeToLeader, where an ambiguous
// outcome is retried under the same idempotent ID instead of raced.
func (rt *Router) hedgedFetch(ctx context.Context, topo *topology, primary, hedge *node, method, path string, body []byte, hw []uint64) ([]byte, error) {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		data []byte
		err  error
	}
	ch := make(chan result, 2)
	launch := func(n *node) {
		go func() {
			data, err := rt.fetchOn(cctx, topo, n, method, path, body, hw)
			ch <- result{data, err}
		}()
	}
	launch(primary)
	inflight := 1
	var hedgeC <-chan time.Time
	var timer *time.Timer
	if hedge != nil {
		if d := rt.hedgeDelay(primary); d > 0 {
			timer = time.NewTimer(d)
			defer timer.Stop()
			hedgeC = timer.C
		}
	}
	var lastErr error
	for {
		select {
		case <-hedgeC:
			hedgeC = nil
			rt.met.hedges.Add(1)
			launch(hedge)
			inflight++
		case res := <-ch:
			inflight--
			if res.err == nil {
				return res.data, nil
			}
			var te *terminalError
			if errors.As(res.err, &te) {
				return nil, res.err
			}
			lastErr = res.err
			if hedgeC != nil {
				// Primary failed before the hedge fired: fail over to the
				// hedge candidate immediately instead of waiting the delay.
				timer.Stop()
				hedgeC = nil
				launch(hedge)
				inflight++
				continue
			}
			if inflight == 0 {
				return nil, lastErr
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// partitionFetch is the full per-partition read discipline: candidate
// selection, hedging, then capped-backoff retries.
func (rt *Router) partitionFetch(ctx context.Context, p *partition, method, path string, body []byte) ([]byte, error) {
	hw := p.hwVector()
	var lastErr error
	backoff := rt.cfg.BackoffBase
	for attempt := 0; attempt <= rt.cfg.Retries; attempt++ {
		if attempt > 0 {
			rt.met.retries.Add(1)
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(rt.jitter(backoff)):
			}
			if backoff *= 2; backoff > rt.cfg.BackoffCap {
				backoff = rt.cfg.BackoffCap
			}
		}
		// Reload the topology each attempt: a promotion mid-read moves the
		// leader, and later attempts should see the new regime.
		topo := p.topo.Load()
		cands := rt.readCandidates(topo, hw, attempt)
		if len(cands) == 0 {
			lastErr = errNoCandidates
			continue
		}
		var hedge *node
		if len(cands) > 1 {
			hedge = cands[1]
		}
		data, err := rt.hedgedFetch(ctx, topo, cands[0], hedge, method, path, body, hw)
		if err == nil {
			return data, nil
		}
		var te *terminalError
		if errors.As(err, &te) {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// topkResponse is the router's response encoding. Without the degraded
// marker it marshals to exactly the bytes a single serve.Server would emit
// for the same results — the byte-identity contract.
type topkResponse struct {
	Results  []wireResult `json:"results"`
	Degraded bool         `json:"degraded,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encode response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

func writeError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// allowPartial reads the explicit degradation opt-in from the URL.
func allowPartial(r *http.Request) bool {
	switch r.URL.Query().Get("allow_partial") {
	case "1", "true", "yes":
		return true
	}
	return false
}

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	return io.ReadAll(r.Body)
}

func (rt *Router) handleTopK(w http.ResponseWriter, r *http.Request) {
	rt.met.reads.Add(1)
	body, err := readBody(w, r)
	if err != nil {
		rt.met.errors4xx.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Peek k and stats; the nodes do the full strict validation.
	var peek struct {
		K     int  `json:"k"`
		Stats bool `json:"stats"`
	}
	if err := json.Unmarshal(body, &peek); err != nil {
		rt.met.errors4xx.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode query: %w", err))
		return
	}
	if peek.Stats {
		rt.met.errors4xx.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("router: stats=true is not supported through the router (per-node counters do not merge)"))
		return
	}
	if peek.K < 1 {
		rt.met.errors4xx.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("k must be ≥ 1, got %d", peek.K))
		return
	}

	lists := make([][]wireResult, len(rt.parts))
	errs := make([]error, len(rt.parts))
	var wg sync.WaitGroup
	for i, p := range rt.parts {
		wg.Add(1)
		go func(i int, p *partition) {
			defer wg.Done()
			data, err := rt.partitionFetch(r.Context(), p, http.MethodPost, "/v1/topk", body)
			if err != nil {
				errs[i] = fmt.Errorf("partition %s: %w", p.name, err)
				return
			}
			var tr struct {
				Results []wireResult `json:"results"`
			}
			if err := json.Unmarshal(data, &tr); err != nil {
				errs[i] = fmt.Errorf("partition %s: decode: %w", p.name, err)
				return
			}
			lists[i] = tr.Results
		}(i, p)
	}
	wg.Wait()

	// Scan every partition's outcome before answering: each failed partition
	// counts exactly once, and a terminal verdict anywhere wins over the
	// retryable failures — the request itself is invalid, and answering 503
	// for it would invite a pointless client retry.
	var live [][]wireResult
	var terminal *terminalError
	failed := 0
	for i := range errs {
		if errs[i] == nil {
			live = append(live, lists[i])
			continue
		}
		failed++
		rt.met.partitionFailures.Add(1)
		var te *terminalError
		if terminal == nil && errors.As(errs[i], &te) {
			terminal = te
		}
	}
	if terminal != nil {
		// The request itself is invalid — every partition would agree. Relay
		// the node's own verdict (status and body), exactly as a single node
		// would have answered.
		rt.relayTerminal(w, terminal)
		return
	}
	if failed > 0 && (!allowPartial(r) || failed == len(rt.parts)) {
		rt.met.unavailable.Add(1)
		writeError(w, http.StatusServiceUnavailable, joinErrs(errs))
		return
	}
	merged := mergeTopK(live, peek.K)
	if merged == nil {
		merged = []wireResult{}
	}
	resp := topkResponse{Results: merged, Degraded: failed > 0}
	if failed > 0 {
		rt.met.degraded.Add(1)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	rt.met.reads.Add(1)
	body, err := readBody(w, r)
	if err != nil {
		rt.met.errors4xx.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var peek struct {
		Queries []struct {
			K     int  `json:"k"`
			Stats bool `json:"stats"`
		} `json:"queries"`
	}
	if err := json.Unmarshal(body, &peek); err != nil || len(peek.Queries) == 0 {
		rt.met.errors4xx.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode batch: %v", err))
		return
	}
	for qi := range peek.Queries {
		// Same contract as handleTopK: per-node counters do not merge, so a
		// stats request must fail loudly rather than silently drop them.
		if peek.Queries[qi].Stats {
			rt.met.errors4xx.Add(1)
			writeError(w, http.StatusBadRequest, fmt.Errorf("router: stats=true is not supported through the router (per-node counters do not merge); query %d sets it", qi))
			return
		}
	}

	// The whole batch is forwarded to every partition (each holds a row
	// subset of every query's candidate pool), then merged query-by-query.
	perPart := make([][][]wireResult, len(rt.parts))
	errs := make([]error, len(rt.parts))
	var wg sync.WaitGroup
	for i, p := range rt.parts {
		wg.Add(1)
		go func(i int, p *partition) {
			defer wg.Done()
			data, err := rt.partitionFetch(r.Context(), p, http.MethodPost, "/v1/batch", body)
			if err != nil {
				errs[i] = fmt.Errorf("partition %s: %w", p.name, err)
				return
			}
			var br struct {
				Results [][]wireResult `json:"results"`
			}
			if err := json.Unmarshal(data, &br); err != nil || len(br.Results) != len(peek.Queries) {
				errs[i] = fmt.Errorf("partition %s: malformed batch response", p.name)
				return
			}
			perPart[i] = br.Results
		}(i, p)
	}
	wg.Wait()
	// Scan every outcome before answering — returning on the first error
	// would let a retryable failure in an early partition mask a later
	// partition's terminal verdict behind a 503, and would count only one of
	// several failed partitions.
	var terminal *terminalError
	failed := 0
	for _, err := range errs {
		if err == nil {
			continue
		}
		failed++
		rt.met.partitionFailures.Add(1)
		var te *terminalError
		if terminal == nil && errors.As(err, &te) {
			terminal = te
		}
	}
	if terminal != nil {
		rt.relayTerminal(w, terminal)
		return
	}
	if failed > 0 {
		// Batches have no partial mode: a batch is usually a programmatic
		// consumer that wants all-or-nothing.
		rt.met.unavailable.Add(1)
		writeError(w, http.StatusServiceUnavailable, joinErrs(errs))
		return
	}
	out := struct {
		Results [][]wireResult `json:"results"`
	}{Results: make([][]wireResult, len(peek.Queries))}
	lists := make([][]wireResult, len(rt.parts))
	for qi := range peek.Queries {
		for pi := range perPart {
			lists[pi] = perPart[pi][qi]
		}
		out.Results[qi] = mergeTopK(lists, peek.Queries[qi].K)
		if out.Results[qi] == nil {
			out.Results[qi] = []wireResult{}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func joinErrs(errs []error) error {
	var parts []string
	for _, e := range errs {
		if e != nil {
			parts = append(parts, e.Error())
		}
	}
	return fmt.Errorf("router: %s", strings.Join(parts, "; "))
}
