package router

import "container/heap"

// Exact k-way merge of per-partition top-k lists. Partitions hold disjoint
// rows and each list arrives already ordered by the serving nodes' global
// order — score descending, ID ascending on ties — so the merge is a
// classic tournament: a heap of list heads, pop the best, advance that
// list. The result is exactly the order a single node over the union would
// produce, which is what makes a router response byte-identical to the
// single-node oracle.

// wireResult mirrors the serving layer's result encoding. Scores decoded
// from a node's JSON re-encode to identical bytes (encoding/json's
// shortest-roundtrip float formatting is deterministic), so merging through
// this struct preserves byte-identity end to end.
type wireResult struct {
	ID    int     `json:"id"`
	Score float64 `json:"score"`
}

// resultLess is the global result order: score descending, ID ascending.
func resultLess(a, b wireResult) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// mergeHead is one list's cursor in the tournament heap.
type mergeHead struct {
	list []wireResult
	pos  int
}

type mergeHeap []mergeHead

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	return resultLess(h[i].list[h[i].pos], h[j].list[h[j].pos])
}
func (h mergeHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)     { *h = append(*h, x.(mergeHead)) }
func (h *mergeHeap) Pop() (out any) { old := *h; n := len(old); out = old[n-1]; *h = old[:n-1]; return }

// mergeTopK merges per-partition top-k lists into the global top-k. Lists
// must each be sorted by resultLess (they are — nodes emit that order); the
// output is the best k of their union in the same order. Returns an empty
// (non-nil) slice when k rows don't exist, matching node behavior of
// always encoding a "results" array.
func mergeTopK(lists [][]wireResult, k int) []wireResult {
	h := make(mergeHeap, 0, len(lists))
	for _, l := range lists {
		if len(l) > 0 {
			h = append(h, mergeHead{list: l})
		}
	}
	heap.Init(&h)
	out := make([]wireResult, 0, k)
	for len(h) > 0 && len(out) < k {
		out = append(out, h[0].list[h[0].pos])
		if h[0].pos++; h[0].pos == len(h[0].list) {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	return out
}
