package router

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Router observability: /healthz (liveness plus per-node breaker states),
// /statz (JSON snapshot of topology, watermarks, and counters), /metrics
// (Prometheus text format).

// newBodyRequest builds a JSON request with an optional body.
func newBodyRequest(ctx context.Context, method, url string, body []byte) (*http.Request, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return req, nil
}

func readAllBounded(r io.Reader) ([]byte, error) {
	return io.ReadAll(io.LimitReader(r, maxBody))
}

// NodeStatz is one node's row in the router's Statz.
type NodeStatz struct {
	URL     string  `json:"url"`
	Healthy bool    `json:"healthy"`
	P99Ms   float64 `json:"p99_ms"`
}

// PartitionStatz is one partition's block in the router's Statz.
type PartitionStatz struct {
	Name       string      `json:"name"`
	Generation uint64      `json:"generation"`
	Leader     NodeStatz   `json:"leader"`
	Replicas   []NodeStatz `json:"replicas"`
	HW         []uint64    `json:"write_watermark,omitempty"`
}

// Statz is the router's JSON diagnostic snapshot.
type Statz struct {
	Role       string           `json:"role"`
	Slots      int              `json:"slots"`
	Partitions []PartitionStatz `json:"partitions"`

	Reads             uint64 `json:"reads"`
	Writes            uint64 `json:"writes"`
	Retries           uint64 `json:"retries"`
	Hedges            uint64 `json:"hedges"`
	ReplicaReads      uint64 `json:"replica_reads"`
	StaleRejects      uint64 `json:"stale_rejects"`
	Degraded          uint64 `json:"degraded_responses"`
	PartitionFailures uint64 `json:"partition_failures"`
	Unavailable       uint64 `json:"unavailable_responses"`
	Errors4xx         uint64 `json:"errors_4xx"`
	Promotions        uint64 `json:"promotions"`
	Demotions         uint64 `json:"demotions"`
	NextID            int64  `json:"next_id"`
}

func nodeStatz(n *node) NodeStatz {
	return NodeStatz{
		URL:     n.url,
		Healthy: n.healthy(),
		P99Ms:   float64(n.lat.quantile(0.99)) / float64(time.Millisecond),
	}
}

// Statz returns the router's current snapshot (what GET /statz serves).
func (rt *Router) Statz() Statz {
	st := Statz{
		Role:              "router",
		Slots:             rt.cfg.Slots,
		Reads:             rt.met.reads.Load(),
		Writes:            rt.met.writes.Load(),
		Retries:           rt.met.retries.Load(),
		Hedges:            rt.met.hedges.Load(),
		ReplicaReads:      rt.met.replicaReads.Load(),
		StaleRejects:      rt.met.staleRejects.Load(),
		Degraded:          rt.met.degraded.Load(),
		PartitionFailures: rt.met.partitionFailures.Load(),
		Unavailable:       rt.met.unavailable.Load(),
		Errors4xx:         rt.met.errors4xx.Load(),
		Promotions:        rt.met.promotions.Load(),
		Demotions:         rt.met.demotions.Load(),
		NextID:            rt.nextID.Load(),
	}
	for _, p := range rt.parts {
		topo := p.topo.Load()
		ps := PartitionStatz{Name: p.name, Generation: topo.gen, Leader: nodeStatz(topo.leader), HW: p.hwVector()}
		for _, r := range topo.replicas {
			ps.Replicas = append(ps.Replicas, nodeStatz(r))
		}
		st.Partitions = append(st.Partitions, ps)
	}
	return st
}

// handleHealthz: the router is alive as long as it runs; the body reports
// what it can reach. It answers 503 only when every node of some partition
// is ejected — the state in which reads are guaranteed to fail.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	dead := ""
	for _, p := range rt.parts {
		anyUp := false
		for _, n := range p.topo.Load().nodes() {
			anyUp = anyUp || n.healthy()
		}
		if !anyUp {
			dead = p.name
			break
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if dead != "" {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "degraded: partition %s has no live nodes\n", dead)
		return
	}
	fmt.Fprintf(w, "ok\nrole: router\n")
	for _, p := range rt.parts {
		topo := p.topo.Load()
		for _, n := range topo.nodes() {
			state := "up"
			if !n.healthy() {
				state = "ejected"
			}
			role := "replica"
			if n == topo.leader {
				role = "leader"
			}
			fmt.Fprintf(w, "node %s (%s, %s): %s\n", n.url, p.name, role, state)
		}
	}
}

func (rt *Router) handleStatz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.Statz())
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	st := rt.Statz()
	series := []struct {
		name string
		help string
		kind string
		v    uint64
	}{
		{"sdrouter_reads_total", "Read requests (topk + batch).", "counter", st.Reads},
		{"sdrouter_writes_total", "Write requests (insert + remove).", "counter", st.Writes},
		{"sdrouter_retries_total", "Retried attempts.", "counter", st.Retries},
		{"sdrouter_hedges_total", "Hedged read attempts launched.", "counter", st.Hedges},
		{"sdrouter_replica_reads_total", "Reads answered by a non-leader node.", "counter", st.ReplicaReads},
		{"sdrouter_stale_rejects_total", "Replica answers rejected as staler than the write watermark.", "counter", st.StaleRejects},
		{"sdrouter_degraded_responses_total", "allow_partial responses served with a degraded marker.", "counter", st.Degraded},
		{"sdrouter_partition_failures_total", "Partition-level fetch failures.", "counter", st.PartitionFailures},
		{"sdrouter_unavailable_total", "Requests answered 503.", "counter", st.Unavailable},
		{"sdrouter_promotions_total", "Replicas promoted to partition leader.", "counter", st.Promotions},
		{"sdrouter_demotions_total", "Stale leaders demoted to follower.", "counter", st.Demotions},
	}
	for _, s := range series {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", s.name, s.help, s.name, s.kind, s.name, s.v)
	}
	fmt.Fprintf(w, "# HELP sdrouter_node_up Node health by URL (1 = breaker closed).\n# TYPE sdrouter_node_up gauge\n")
	for _, p := range rt.parts {
		for _, n := range p.topo.Load().nodes() {
			up := 0
			if n.healthy() {
				up = 1
			}
			fmt.Fprintf(w, "sdrouter_node_up{partition=%q,url=%q} %d\n", p.name, n.url, up)
		}
	}
	fmt.Fprintf(w, "# HELP sdrouter_partition_generation Fencing generation by partition.\n# TYPE sdrouter_partition_generation gauge\n")
	for _, p := range rt.parts {
		fmt.Fprintf(w, "sdrouter_partition_generation{partition=%q} %d\n", p.name, p.topo.Load().gen)
	}
}
