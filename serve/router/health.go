package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Per-node health: a consecutive-failure circuit breaker fed by both the
// active health checker and passive request outcomes, plus a small latency
// ring that feeds the adaptive hedge delay.
//
// Breaker states map onto two atomics. fails counts consecutive failures;
// reaching FailAfter trips the breaker by stamping downSince. While tripped,
// the node is skipped by candidate selection until ReopenAfter has elapsed —
// then it is half-open: offered again, and the next outcome either resets it
// (success) or re-stamps downSince for another full ReopenAfter (failure).
// The health loop probes every node on a fixed cadence regardless of state,
// so an ejected node recovers within ReopenAfter + one probe interval even
// with zero client traffic.

type node struct {
	url       string
	fails     atomic.Int32
	downSince atomic.Int64 // unix nanos when tripped; 0 = closed (healthy)
	lat       latRing

	// lsns caches the last LSN vector this node reported (on read responses
	// and candidate probes). Read balancing consults it to skip replicas
	// known to be staler than the partition watermark; it is a hint, not a
	// proof — the answer-time freshness gate in fetchOn stays authoritative.
	lsnMu    sync.Mutex
	lsns     []uint64
	seenLSNs bool
}

func (n *node) setLSNs(v []uint64) {
	n.lsnMu.Lock()
	n.lsns = append(n.lsns[:0], v...)
	n.seenLSNs = true
	n.lsnMu.Unlock()
}

func (n *node) lastLSNs() ([]uint64, bool) {
	n.lsnMu.Lock()
	defer n.lsnMu.Unlock()
	if !n.seenLSNs {
		return nil, false
	}
	return append([]uint64(nil), n.lsns...), true
}

func (n *node) ok() {
	n.fails.Store(0)
	n.downSince.Store(0)
}

func (n *node) fail(failAfter int32) {
	if n.fails.Add(1) >= failAfter {
		// Always re-stamp: a half-open probe that fails buys another full
		// ReopenAfter of ejection instead of letting traffic hammer a node
		// that answered one probe poorly.
		n.downSince.Store(time.Now().UnixNano())
	}
}

// available reports whether the breaker admits traffic: closed, or tripped
// long enough ago to be half-open.
func (n *node) available(reopenAfter time.Duration) bool {
	ds := n.downSince.Load()
	return ds == 0 || time.Since(time.Unix(0, ds)) >= reopenAfter
}

func (n *node) healthy() bool { return n.downSince.Load() == 0 }

// latRing is a small sliding window of observed request latencies. The
// hedge trigger wants "this try is slower than this node usually is", which
// a recent-window quantile answers without unbounded history.
type latRing struct {
	mu  sync.Mutex
	buf [64]time.Duration
	n   int // filled entries
	i   int // next write
}

func (l *latRing) observe(d time.Duration) {
	l.mu.Lock()
	l.buf[l.i] = d
	l.i = (l.i + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.mu.Unlock()
}

// quantile returns the q-quantile of the window (0 when empty).
func (l *latRing) quantile(q float64) time.Duration {
	l.mu.Lock()
	n := l.n
	tmp := make([]time.Duration, n)
	copy(tmp, l.buf[:n])
	l.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	idx := int(q * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return tmp[idx]
}

// healthLoop actively probes every node's /healthz until the router closes.
func (rt *Router) healthLoop() {
	defer close(rt.done)
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.quit:
			return
		case <-t.C:
			rt.probeAll()
		}
	}
}

func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	for _, p := range rt.parts {
		topo := p.topo.Load()
		for _, n := range topo.nodes() {
			wg.Add(1)
			go func(p *partition, topo *topology, n *node) {
				defer wg.Done()
				role, gen, up := rt.probe(n)
				if !up {
					return
				}
				cur := p.maxGen.Load()
				for gen > cur && !p.maxGen.CompareAndSwap(cur, gen) {
					cur = p.maxGen.Load()
				}
				if n != topo.leader && role == "leader" && gen < topo.gen {
					// A deposed leader came back still believing itself the
					// leader of a past generation. Its writes are already
					// fenced off; demote it so it rejoins as a follower of
					// the current leader and becomes a useful replica again.
					rt.demote(p, topo, n)
				}
			}(p, topo, n)
		}
	}
	wg.Wait()
	rt.promoteDue()
}

// probe is one active health check. Draining (503) and dead nodes both
// count as failures; any 200 closes the breaker and reports the node's
// self-declared role and fencing generation (from the X-SD-Role and
// X-SD-Generation healthz headers; "" and 0 for pre-promotion nodes).
func (rt *Router) probe(n *node) (role string, gen uint64, up bool) {
	req, err := http.NewRequest(http.MethodGet, n.url+"/healthz", nil)
	if err != nil {
		return "", 0, false
	}
	resp, err := rt.probeClient.Do(req)
	if err != nil {
		n.fail(int32(rt.cfg.FailAfter))
		return "", 0, false
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		n.fail(int32(rt.cfg.FailAfter))
		return "", 0, false
	}
	n.ok()
	gen, _ = strconv.ParseUint(resp.Header.Get("X-SD-Generation"), 10, 64)
	return resp.Header.Get("X-SD-Role"), gen, true
}

// adminTimeout bounds one promote or demote call. Both involve real work on
// the node (a WAL checkpoint of the whole index; a snapshot re-bootstrap),
// so the budget is far above TryTimeout.
const adminTimeout = 60 * time.Second

// promoteDue scans for partitions whose leader has been continuously
// unhealthy past the PromoteAfter deadline and starts one promotion attempt
// each. Called from the health loop after every probe round.
func (rt *Router) promoteDue() {
	if rt.cfg.PromoteAfter < 0 {
		return
	}
	now := time.Now().UnixNano()
	for _, p := range rt.parts {
		topo := p.topo.Load()
		if topo.leader.healthy() {
			p.leaderDown.Store(0)
			continue
		}
		if len(topo.replicas) == 0 {
			continue
		}
		down := p.leaderDown.Load()
		if down == 0 {
			p.leaderDown.Store(now)
			continue
		}
		if time.Duration(now-down) < rt.cfg.PromoteAfter {
			continue
		}
		if !p.promoting.CompareAndSwap(false, true) {
			continue
		}
		go func(p *partition, topo *topology) {
			defer p.promoting.Store(false)
			if rt.promote(p, topo) {
				p.leaderDown.Store(0)
			}
		}(p, topo)
	}
}

// promote elects and fences a new leader for a partition whose leader is
// gone. The candidate must be a live replica whose LSN vector covers the
// partition's write watermark (no acknowledged write may be lost) and every
// other live replica's vector (no fresher survivor is left behind). If no
// replica qualifies the attempt is abandoned — the router keeps waiting, by
// design: promoting a lagging replica would silently drop acked writes.
// The new generation is allocated above both the topology's and the highest
// generation any node has ever reported, so a promote whose ack was lost
// can never leave two nodes fenced at the same generation.
func (rt *Router) promote(p *partition, topo *topology) bool {
	if p.topo.Load() != topo {
		return false // a concurrent regime change already superseded this one
	}
	ctx, cancel := context.WithTimeout(context.Background(), adminTimeout)
	defer cancel()
	hw := p.hwVector()
	type candidate struct {
		n    *node
		lsns []uint64
	}
	var cands []candidate
	for _, rn := range topo.replicas {
		if !rn.healthy() {
			continue
		}
		lsns, err := rt.replLSNs(ctx, rn)
		if err != nil {
			continue
		}
		rn.setLSNs(lsns)
		cands = append(cands, candidate{rn, lsns})
	}
	var best *candidate
	for i := range cands {
		c := &cands[i]
		qualified := vectorCovers(c.lsns, hw)
		for j := range cands {
			qualified = qualified && vectorCovers(c.lsns, cands[j].lsns)
		}
		if qualified {
			best = c
			break
		}
	}
	if best == nil {
		return false
	}
	gen := topo.gen
	if mg := p.maxGen.Load(); mg > gen {
		gen = mg
	}
	gen++
	body, err := json.Marshal(map[string]uint64{"generation": gen})
	if err != nil {
		return false
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, best.n.url+"/v1/admin/promote", bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, maxBody))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	// The candidate accepted the fence; even if this router crashed here the
	// generation bookkeeping above keeps the next attempt strictly newer.
	nt := &topology{gen: gen, leader: best.n}
	nt.replicas = append(nt.replicas, topo.leader)
	for _, rn := range topo.replicas {
		if rn != best.n {
			nt.replicas = append(nt.replicas, rn)
		}
	}
	p.topo.Store(nt)
	cur := p.maxGen.Load()
	for gen > cur && !p.maxGen.CompareAndSwap(cur, gen) {
		cur = p.maxGen.Load()
	}
	rt.met.promotions.Add(1)
	return true
}

// replLSNs asks one replica for its applied LSN vector (the repl_lsns field
// of /statz) — the promotion candidate gate's evidence.
func (rt *Router) replLSNs(ctx context.Context, n *node) ([]uint64, error) {
	tctx, cancel := context.WithTimeout(ctx, rt.cfg.TryTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(tctx, http.MethodGet, n.url+"/statz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("router: %s /statz answered %d", n.url, resp.StatusCode)
	}
	var st struct {
		LSNs []uint64 `json:"repl_lsns"`
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, err
	}
	return st.LSNs, nil
}

// demote tells a stale self-declared leader to rejoin as a follower of the
// current leader. Fenced like promote: the node only obeys a generation
// strictly above its own, which the current topology generation is for any
// leader deposed by a promotion.
func (rt *Router) demote(p *partition, topo *topology, n *node) {
	if !p.demoting.CompareAndSwap(false, true) {
		return // one demotion in flight per partition; probes re-trigger
	}
	go func() {
		defer p.demoting.Store(false)
		ctx, cancel := context.WithTimeout(context.Background(), adminTimeout)
		defer cancel()
		body, err := json.Marshal(map[string]any{"generation": topo.gen, "leader": topo.leader.url})
		if err != nil {
			return
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.url+"/v1/admin/demote", bytes.NewReader(body))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := rt.client.Do(req)
		if err != nil {
			return
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxBody))
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			rt.met.demotions.Add(1)
		}
	}()
}
