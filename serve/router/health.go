package router

import (
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Per-node health: a consecutive-failure circuit breaker fed by both the
// active health checker and passive request outcomes, plus a small latency
// ring that feeds the adaptive hedge delay.
//
// Breaker states map onto two atomics. fails counts consecutive failures;
// reaching FailAfter trips the breaker by stamping downSince. While tripped,
// the node is skipped by candidate selection until ReopenAfter has elapsed —
// then it is half-open: offered again, and the next outcome either resets it
// (success) or re-stamps downSince for another full ReopenAfter (failure).
// The health loop probes every node on a fixed cadence regardless of state,
// so an ejected node recovers within ReopenAfter + one probe interval even
// with zero client traffic.

type node struct {
	url       string
	fails     atomic.Int32
	downSince atomic.Int64 // unix nanos when tripped; 0 = closed (healthy)
	lat       latRing
}

func (n *node) ok() {
	n.fails.Store(0)
	n.downSince.Store(0)
}

func (n *node) fail(failAfter int32) {
	if n.fails.Add(1) >= failAfter {
		// Always re-stamp: a half-open probe that fails buys another full
		// ReopenAfter of ejection instead of letting traffic hammer a node
		// that answered one probe poorly.
		n.downSince.Store(time.Now().UnixNano())
	}
}

// available reports whether the breaker admits traffic: closed, or tripped
// long enough ago to be half-open.
func (n *node) available(reopenAfter time.Duration) bool {
	ds := n.downSince.Load()
	return ds == 0 || time.Since(time.Unix(0, ds)) >= reopenAfter
}

func (n *node) healthy() bool { return n.downSince.Load() == 0 }

// latRing is a small sliding window of observed request latencies. The
// hedge trigger wants "this try is slower than this node usually is", which
// a recent-window quantile answers without unbounded history.
type latRing struct {
	mu  sync.Mutex
	buf [64]time.Duration
	n   int // filled entries
	i   int // next write
}

func (l *latRing) observe(d time.Duration) {
	l.mu.Lock()
	l.buf[l.i] = d
	l.i = (l.i + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.mu.Unlock()
}

// quantile returns the q-quantile of the window (0 when empty).
func (l *latRing) quantile(q float64) time.Duration {
	l.mu.Lock()
	n := l.n
	tmp := make([]time.Duration, n)
	copy(tmp, l.buf[:n])
	l.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	idx := int(q * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return tmp[idx]
}

// healthLoop actively probes every node's /healthz until the router closes.
func (rt *Router) healthLoop() {
	defer close(rt.done)
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.quit:
			return
		case <-t.C:
			rt.probeAll()
		}
	}
}

func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	for _, p := range rt.parts {
		for _, n := range p.nodes() {
			wg.Add(1)
			go func(n *node) {
				defer wg.Done()
				rt.probe(n)
			}(n)
		}
	}
	wg.Wait()
}

// probe is one active health check. Draining (503) and dead nodes both
// count as failures; any 200 closes the breaker.
func (rt *Router) probe(n *node) {
	req, err := http.NewRequest(http.MethodGet, n.url+"/healthz", nil)
	if err != nil {
		return
	}
	resp, err := rt.probeClient.Do(req)
	if err != nil {
		n.fail(int32(rt.cfg.FailAfter))
		return
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		n.fail(int32(rt.cfg.FailAfter))
		return
	}
	n.ok()
}
