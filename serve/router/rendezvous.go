// Package router is the cluster front door: it partitions the global ID
// space across leader groups (a leader plus its followers), scatter-gathers
// top-k reads over every partition and merges them exactly, routes writes to
// the owning partition's leader under router-assigned globally-unique IDs,
// and wraps it all in the fault-tolerance machinery a multi-node deployment
// needs — per-try timeouts, capped exponential backoff with jitter, hedged
// reads against replicas, active health checking with ejection and half-open
// recovery, and failover to the freshest replica when a leader dies.
//
// Exactness survives distribution because the SD-score of a point depends
// only on that point and the query (Ranu & Singh, VLDB 2011): each
// partition's top-k is computed over a disjoint subset of the rows, so the
// k best of their union is exactly the k-way merge of the per-partition
// answers. A router response is byte-identical to a single node holding all
// the rows — the property the chaos suite pins — unless a partition is
// unreachable, in which case the router fails fast (503) or, under the
// explicit allow_partial=1 query flag, answers with the surviving
// partitions' merge plus a "degraded":true marker. Never a silently wrong
// answer.
package router

import (
	"fmt"
	"hash/fnv"
)

// Rendezvous (highest-random-weight) hashing maps ID slots to partitions.
// The ID space is folded into a fixed number of slots (id % slots) and each
// slot is owned by the partition with the highest hash of (partition name,
// slot). Adding or removing a partition remaps only the slots it wins or
// loses — every other (slot, partition) pair keeps its relative weight, so
// no unrelated data moves. The slot table is built once at startup; lookups
// are one modulo and one index.

// rendezvousOwners assigns each of slots slots to one of the named
// partitions, returning the slot→partition-index table.
func rendezvousOwners(names []string, slots int) ([]int, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("router: no partitions")
	}
	if slots < 1 {
		return nil, fmt.Errorf("router: slots must be ≥ 1, got %d", slots)
	}
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if n == "" {
			return nil, fmt.Errorf("router: empty partition name")
		}
		if seen[n] {
			return nil, fmt.Errorf("router: duplicate partition name %q", n)
		}
		seen[n] = true
	}
	table := make([]int, slots)
	for slot := range table {
		best, bestW := -1, uint64(0)
		for pi, name := range names {
			if w := rendezvousWeight(name, slot); best < 0 || w > bestW {
				best, bestW = pi, w
			}
		}
		table[slot] = best
	}
	return table, nil
}

// rendezvousWeight hashes one (partition, slot) pair. FNV-1a over
// "name:slot" — stable across processes and Go versions, which is what
// makes the mapping a deployment-wide constant instead of per-router state.
func rendezvousWeight(name string, slot int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	h.Write([]byte{':', byte(slot), byte(slot >> 8), byte(slot >> 16), byte(slot >> 24)})
	return h.Sum64()
}
