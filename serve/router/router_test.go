package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	sdquery "repro"
	"repro/internal/dataset"
	"repro/serve"
)

func testRoles() []sdquery.Role {
	return []sdquery.Role{sdquery.Repulsive, sdquery.Attractive, sdquery.Repulsive, sdquery.Attractive}
}

func queryBody(t *testing.T, q sdquery.Query) []byte {
	t.Helper()
	roles := make([]string, len(q.Roles))
	for i, r := range q.Roles {
		roles[i] = r.String()
	}
	body, err := json.Marshal(map[string]any{
		"point": q.Point, "k": q.K, "roles": roles, "weights": q.Weights,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func testQueries(n int, seed int64) []sdquery.Query {
	rng := rand.New(rand.NewSource(seed))
	roles := testRoles()
	qs := make([]sdquery.Query, n)
	for i := range qs {
		q := sdquery.Query{
			Point:   make([]float64, len(roles)),
			K:       1 + rng.Intn(10),
			Roles:   roles,
			Weights: make([]float64, len(roles)),
		}
		for d := range q.Point {
			q.Point[d] = rng.Float64()
			q.Weights[d] = rng.Float64()
		}
		qs[i] = q
	}
	return qs
}

// clusterFromRows partitions rows by the router's own rendezvous table and
// serves each partition from its own serve.Server, returning the router and
// the partition servers.
func clusterFromRows(t *testing.T, data [][]float64, names []string, slots int) (*Router, []*httptest.Server) {
	t.Helper()
	table, err := rendezvousOwners(names, slots)
	if err != nil {
		t.Fatal(err)
	}
	partRows := make([][][]float64, len(names))
	partIDs := make([][]int, len(names))
	for id, row := range data {
		pi := table[id%slots]
		partRows[pi] = append(partRows[pi], row)
		partIDs[pi] = append(partIDs[pi], id)
	}
	servers := make([]*httptest.Server, len(names))
	cfg := Config{Slots: slots, Seed: 1, Retries: 1, BackoffBase: 5 * time.Millisecond, TryTimeout: 5 * time.Second}
	for pi, name := range names {
		idx, err := sdquery.NewShardedIndexWithIDs(partRows[pi], partIDs[pi], testRoles(), sdquery.WithShards(2))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(idx.Close)
		s := serve.New(idx)
		t.Cleanup(s.Close)
		servers[pi] = httptest.NewServer(s.Handler())
		t.Cleanup(servers[pi].Close)
		cfg.Partitions = append(cfg.Partitions, Partition{Name: name, Leader: servers[pi].URL})
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt, servers
}

// TestScatterGatherByteIdentity pins the distribution contract: the
// router's merged answer over partitioned rows is byte-identical to a
// single node holding every row.
func TestScatterGatherByteIdentity(t *testing.T) {
	data := dataset.Generate(dataset.Uniform, 4_000, len(testRoles()), 51)

	oracle, err := sdquery.NewShardedIndex(data, testRoles(), sdquery.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	os := serve.New(oracle)
	defer os.Close()
	ots := httptest.NewServer(os.Handler())
	defer ots.Close()

	rt, _ := clusterFromRows(t, data, []string{"alpha", "beta", "gamma"}, 64)
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	client := &http.Client{}
	for qi, q := range testQueries(40, 52) {
		body := queryBody(t, q)
		oresp, err := client.Post(ots.URL+"/v1/topk", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		ob, _ := readAllBounded(oresp.Body)
		oresp.Body.Close()
		rresp, err := client.Post(rts.URL+"/v1/topk", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		rb, _ := readAllBounded(rresp.Body)
		rresp.Body.Close()
		if oresp.StatusCode != http.StatusOK || rresp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status oracle %d router %d: %s", qi, oresp.StatusCode, rresp.StatusCode, rb)
		}
		if !bytes.Equal(ob, rb) {
			t.Fatalf("query %d diverged:\noracle %s\nrouter %s", qi, ob, rb)
		}
	}

	// Batch path too.
	qs := testQueries(7, 53)
	wq := make([]json.RawMessage, len(qs))
	for i, q := range qs {
		wq[i] = queryBody(t, q)
	}
	bb, _ := json.Marshal(map[string]any{"queries": wq})
	oresp, _ := client.Post(ots.URL+"/v1/batch", "application/json", bytes.NewReader(bb))
	ob, _ := readAllBounded(oresp.Body)
	oresp.Body.Close()
	rresp, _ := client.Post(rts.URL+"/v1/batch", "application/json", bytes.NewReader(bb))
	rb, _ := readAllBounded(rresp.Body)
	rresp.Body.Close()
	if !bytes.Equal(ob, rb) {
		t.Fatalf("batch diverged:\noracle %s\nrouter %s", ob, rb)
	}
}

// TestRouterWriteAndRead drives writes through the router (which assigns
// IDs and routes to owners) and verifies the written points come back in
// reads, identically to an oracle receiving the same logical inserts.
func TestRouterWriteAndRead(t *testing.T) {
	data := dataset.Generate(dataset.Uniform, 1_000, len(testRoles()), 61)
	rt, _ := clusterFromRows(t, data, []string{"a", "b"}, 32)
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()
	client := &http.Client{}

	extra := dataset.Generate(dataset.Uniform, 40, len(testRoles()), 62)
	ids := make([]int, len(extra))
	for i, row := range extra {
		b, _ := json.Marshal(map[string]any{"point": row})
		resp, err := client.Post(rts.URL+"/v1/insert", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		var ir struct {
			ID int `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("insert %d: %d %v", i, resp.StatusCode, err)
		}
		resp.Body.Close()
		ids[i] = ir.ID
		if ir.ID < len(data) {
			t.Fatalf("assigned id %d collides with the seeded space %d", ir.ID, len(data))
		}
		// Retrying the exact same {id, point} must be a duplicate 200.
		rb, _ := json.Marshal(map[string]any{"point": row, "id": ir.ID})
		retry, err := client.Post(rts.URL+"/v1/insert", "application/json", bytes.NewReader(rb))
		if err != nil {
			t.Fatal(err)
		}
		retry.Body.Close()
		if retry.StatusCode != http.StatusOK {
			t.Fatalf("idempotent retry of id %d: status %d", ir.ID, retry.StatusCode)
		}
	}
	// IDs are unique and ascending.
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("ids not ascending: %v", ids)
		}
	}

	// Oracle receives the same rows (IDs implicit: seeded space then extras
	// in order — the router allocated exactly those).
	oracle, err := sdquery.NewShardedIndex(append(append([][]float64{}, data...), extra...), testRoles(), sdquery.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	osrv := serve.New(oracle)
	defer osrv.Close()
	ots := httptest.NewServer(osrv.Handler())
	defer ots.Close()

	for qi, q := range testQueries(20, 63) {
		body := queryBody(t, q)
		oresp, _ := client.Post(ots.URL+"/v1/topk", "application/json", bytes.NewReader(body))
		ob, _ := readAllBounded(oresp.Body)
		oresp.Body.Close()
		rresp, _ := client.Post(rts.URL+"/v1/topk", "application/json", bytes.NewReader(body))
		rb, _ := readAllBounded(rresp.Body)
		rresp.Body.Close()
		if !bytes.Equal(ob, rb) {
			t.Fatalf("query %d after writes diverged:\noracle %s\nrouter %s", qi, ob, rb)
		}
	}

	// Remove through the router, verify on both sides.
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/points/%d", rts.URL, ids[0]), nil)
	resp, err := client.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("remove: %v %d", err, resp.StatusCode)
	}
	resp.Body.Close()
	oracle.Remove(ids[0])
	q := testQueries(1, 64)[0]
	q.K = 2000
	body := queryBody(t, q)
	oresp, _ := client.Post(ots.URL+"/v1/topk", "application/json", bytes.NewReader(body))
	ob, _ := readAllBounded(oresp.Body)
	oresp.Body.Close()
	rresp, _ := client.Post(rts.URL+"/v1/topk", "application/json", bytes.NewReader(body))
	rb, _ := readAllBounded(rresp.Body)
	rresp.Body.Close()
	if !bytes.Equal(ob, rb) {
		t.Fatal("post-remove answers diverged")
	}
}

// TestConcurrentInsertsNeverSpuriously409 pins the write-ordering fix:
// concurrent router inserts get ascending IDs, and without per-partition
// ordering a higher ID could commit before a lower one reached the same
// leader, making the lower insert die with a spurious 409 against an empty
// gap slot. Every concurrent insert must succeed, and every one must be
// verifiably committed under its assigned ID.
func TestConcurrentInsertsNeverSpuriously409(t *testing.T) {
	data := dataset.Generate(dataset.Uniform, 200, len(testRoles()), 91)
	rt, _ := clusterFromRows(t, data, []string{"a", "b"}, 32)
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()
	client := &http.Client{}

	extra := dataset.Generate(dataset.Uniform, 64, len(testRoles()), 92)
	ids := make([]int, len(extra))
	statuses := make([]int, len(extra))
	bodies := make([]string, len(extra))
	var wg sync.WaitGroup
	for i := range extra {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, _ := json.Marshal(map[string]any{"point": extra[i]})
			resp, err := client.Post(rts.URL+"/v1/insert", "application/json", bytes.NewReader(b))
			if err != nil {
				statuses[i] = -1
				bodies[i] = err.Error()
				return
			}
			rb, _ := readAllBounded(resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
			bodies[i] = string(rb)
			var ir struct {
				ID int `json:"id"`
			}
			if json.Unmarshal(rb, &ir) == nil {
				ids[i] = ir.ID
			}
		}(i)
	}
	wg.Wait()

	seen := make(map[int]bool, len(ids))
	for i, st := range statuses {
		if st != http.StatusOK {
			t.Fatalf("concurrent insert %d: status %d body %s", i, st, bodies[i])
		}
		if seen[ids[i]] {
			t.Fatalf("id %d assigned twice", ids[i])
		}
		seen[ids[i]] = true
	}

	// Each insert truly committed under its ID: retrying the identical
	// {id, point} must be a duplicate 200. A lost write would answer 409
	// (the ID space grew past it, but the slot holds nothing).
	for i := range extra {
		rb, _ := json.Marshal(map[string]any{"point": extra[i], "id": ids[i]})
		resp, err := client.Post(rts.URL+"/v1/insert", "application/json", bytes.NewReader(rb))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := readAllBounded(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("retry of committed id %d: status %d body %s", ids[i], resp.StatusCode, body)
		}
	}
}

// TestBatchRejectsStats pins that /v1/batch refuses stats=true loudly, like
// /v1/topk does: per-node counters do not merge, and silently dropping the
// stats would break the byte-identity contract.
func TestBatchRejectsStats(t *testing.T) {
	data := dataset.Generate(dataset.Uniform, 500, len(testRoles()), 95)
	rt, _ := clusterFromRows(t, data, []string{"a", "b"}, 32)
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	qs := testQueries(2, 96)
	wq := make([]json.RawMessage, len(qs))
	for i, q := range qs {
		wq[i] = queryBody(t, q)
	}
	// Flip stats on the second query only.
	var m map[string]any
	if err := json.Unmarshal(wq[1], &m); err != nil {
		t.Fatal(err)
	}
	m["stats"] = true
	wq[1], _ = json.Marshal(m)
	bb, _ := json.Marshal(map[string]any{"queries": wq})

	resp, err := http.Post(rts.URL+"/v1/batch", "application/json", bytes.NewReader(bb))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := readAllBounded(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("batch with stats=true: status %d body %s, want 400", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("stats")) {
		t.Fatalf("400 body does not name stats: %s", body)
	}
}

// TestTerminalReadStatusRelayed pins that a node's terminal verdict on the
// read path keeps its status code and body through the router instead of
// collapsing to a generic 400.
func TestTerminalReadStatusRelayed(t *testing.T) {
	const nodeBody = `{"error":"payload too large"}` + "\n"
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/topk", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusRequestEntityTooLarge)
		w.Write([]byte(nodeBody))
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	node := httptest.NewServer(mux)
	defer node.Close()

	rt, err := New(Config{
		Partitions: []Partition{{Name: "solo", Leader: node.URL}},
		Slots:      8, Seed: 1, Retries: 1,
		BackoffBase: time.Millisecond, TryTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	body := queryBody(t, testQueries(1, 97)[0])
	resp, err := http.Post(rts.URL+"/v1/topk", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := readAllBounded(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("relayed status %d, want %d", resp.StatusCode, http.StatusRequestEntityTooLarge)
	}
	if string(got) != nodeBody {
		t.Fatalf("relayed body %q, want %q", got, nodeBody)
	}
}

// TestAllowPartialContract kills one partition: plain reads must fail fast
// with 503 (never a silently incomplete answer), and allow_partial=1 must
// answer with the survivors plus the degraded marker.
func TestAllowPartialContract(t *testing.T) {
	data := dataset.Generate(dataset.Uniform, 2_000, len(testRoles()), 71)
	rt, servers := clusterFromRows(t, data, []string{"a", "b", "c"}, 48)
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()
	client := &http.Client{}

	servers[1].Close() // partition b is gone

	q := testQueries(1, 72)[0]
	body := queryBody(t, q)
	resp, err := client.Post(rts.URL+"/v1/topk", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("read with a dead partition: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	presp, err := client.Post(rts.URL+"/v1/topk?allow_partial=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	pb, _ := readAllBounded(presp.Body)
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("allow_partial read: status %d %s", presp.StatusCode, pb)
	}
	var tr struct {
		Results  []wireResult `json:"results"`
		Degraded bool         `json:"degraded"`
	}
	if err := json.Unmarshal(pb, &tr); err != nil {
		t.Fatal(err)
	}
	if !tr.Degraded {
		t.Fatalf("partial response not marked degraded: %s", pb)
	}
	if len(tr.Results) == 0 {
		t.Fatal("partial response has no results from the surviving partitions")
	}
}

// TestRendezvousStableUnderMembershipChange pins the rendezvous property
// this scheme is chosen for: adding a partition only moves the slots it
// wins, and removing one only moves the slots it owned.
func TestRendezvousStableUnderMembershipChange(t *testing.T) {
	const slots = 256
	names3 := []string{"a", "b", "c"}
	names4 := []string{"a", "b", "c", "d"}

	t3, err := rendezvousOwners(names3, slots)
	if err != nil {
		t.Fatal(err)
	}
	t4, err := rendezvousOwners(names4, slots)
	if err != nil {
		t.Fatal(err)
	}
	movedToNew, movedElsewhere := 0, 0
	for s := range t3 {
		if t3[s] == t4[s] {
			continue
		}
		if names4[t4[s]] == "d" {
			movedToNew++
		} else {
			movedElsewhere++
		}
	}
	if movedElsewhere != 0 {
		t.Fatalf("adding a partition moved %d slots between existing partitions", movedElsewhere)
	}
	if movedToNew == 0 {
		t.Fatal("the added partition won no slots (weight function broken)")
	}

	// Removal: drop "b"; slots not owned by b must keep their owner.
	names2 := []string{"a", "c"}
	t2, err := rendezvousOwners(names2, slots)
	if err != nil {
		t.Fatal(err)
	}
	for s := range t3 {
		owner3 := names3[t3[s]]
		if owner3 == "b" {
			continue
		}
		if names2[t2[s]] != owner3 {
			t.Fatalf("slot %d moved from %s to %s when unrelated partition b left", s, owner3, names2[t2[s]])
		}
	}

	// Determinism across calls.
	t3b, _ := rendezvousOwners(names3, slots)
	for s := range t3 {
		if t3[s] != t3b[s] {
			t.Fatal("rendezvous table is not deterministic")
		}
	}
}

// referenceMerge is the obviously-correct merge: concatenate and sort.
func referenceMerge(lists [][]wireResult, k int) []wireResult {
	var all []wireResult
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.SliceStable(all, func(i, j int) bool { return resultLess(all[i], all[j]) })
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func TestMergeTopKAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 200; trial++ {
		nLists := 1 + rng.Intn(5)
		lists := make([][]wireResult, nLists)
		id := 0
		for i := range lists {
			n := rng.Intn(12)
			for j := 0; j < n; j++ {
				lists[i] = append(lists[i], wireResult{ID: id, Score: float64(rng.Intn(20)) / 4})
				id++
			}
			sort.SliceStable(lists[i], func(a, b int) bool { return resultLess(lists[i][a], lists[i][b]) })
		}
		k := 1 + rng.Intn(15)
		got := mergeTopK(lists, k)
		want := referenceMerge(lists, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d pos %d: %+v want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// FuzzMerge feeds arbitrary partition-merge inputs through mergeTopK and
// checks it against the reference merge — the fuzz target the CI chaos step
// seeds. The input encodes lists as a byte stream: list lengths then
// (id, score-numerator) pairs.
func FuzzMerge(f *testing.F) {
	f.Add([]byte{2, 3, 1, 0, 5}, 3)
	f.Add([]byte{1, 0}, 1)
	f.Add([]byte{4, 2, 2, 2, 2, 9, 9, 9, 9}, 7)
	f.Add([]byte{}, 5)
	f.Add([]byte{255, 255, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 2)
	f.Fuzz(func(t *testing.T, raw []byte, k int) {
		if k < 1 || k > 1000 {
			return
		}
		// Decode a deterministic list-of-lists from the raw bytes.
		var lists [][]wireResult
		i := 0
		id := 0
		for i < len(raw) && len(lists) < 8 {
			n := int(raw[i]) % 16
			i++
			var l []wireResult
			for j := 0; j < n && i < len(raw); j++ {
				l = append(l, wireResult{ID: id, Score: float64(int(raw[i])%32) / 8})
				id++
				i++
			}
			sort.SliceStable(l, func(a, b int) bool { return resultLess(l[a], l[b]) })
			lists = append(lists, l)
		}
		got := mergeTopK(lists, k)
		want := referenceMerge(lists, k)
		if len(got) != len(want) {
			t.Fatalf("merge returned %d results, reference %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("pos %d: %+v want %+v", i, got[i], want[i])
			}
		}
		// Order invariant: output is sorted by the global order.
		for i := 1; i < len(got); i++ {
			if resultLess(got[i], got[i-1]) {
				t.Fatalf("output out of order at %d", i)
			}
		}
	})
}
