package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	sdquery "repro"
	"repro/internal/dataset"
)

// testRoles is the build-time role vector every serving test uses.
func testRoles() []sdquery.Role {
	return []sdquery.Role{sdquery.Repulsive, sdquery.Attractive, sdquery.Repulsive, sdquery.Attractive}
}

func testIndex(t *testing.T, n int, seed int64, opts ...sdquery.SDOption) *sdquery.ShardedIndex {
	t.Helper()
	data := dataset.Generate(dataset.Uniform, n, len(testRoles()), seed)
	idx, err := sdquery.NewShardedIndex(data, testRoles(), append([]sdquery.SDOption{sdquery.WithShards(4)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(idx.Close)
	return idx
}

func testQueries(n int, seed int64) []sdquery.Query {
	rng := rand.New(rand.NewSource(seed))
	roles := testRoles()
	qs := make([]sdquery.Query, n)
	for i := range qs {
		q := sdquery.Query{
			Point:   make([]float64, len(roles)),
			K:       1 + rng.Intn(10),
			Roles:   roles,
			Weights: make([]float64, len(roles)),
		}
		for d := range q.Point {
			q.Point[d] = rng.Float64()
			q.Weights[d] = rng.Float64()
		}
		qs[i] = q
	}
	return qs
}

// queryBody renders the wire JSON for a query.
func queryBody(t *testing.T, q sdquery.Query) []byte {
	t.Helper()
	roles := make([]string, len(q.Roles))
	for i, r := range q.Roles {
		roles[i] = r.String()
	}
	body, err := json.Marshal(map[string]any{
		"point": q.Point, "k": q.K, "roles": roles, "weights": q.Weights,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// goldenBody renders the byte-exact response the server must produce for
// these results — the same encoder the handler uses.
func goldenBody(t *testing.T, res []sdquery.Result) []byte {
	t.Helper()
	body, err := json.Marshal(topkResponse{Results: wireResults(res)})
	if err != nil {
		t.Fatal(err)
	}
	return append(body, '\n')
}

// postE is the goroutine-safe POST helper (no t.Fatal).
func postE(client *http.Client, url string, body []byte) (int, []byte, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, out, nil
}

func post(t *testing.T, client *http.Client, url string, body []byte) (int, []byte) {
	t.Helper()
	status, out, err := postE(client, url, body)
	if err != nil {
		t.Fatal(err)
	}
	return status, out
}

// TestTopKGolden pins the acceptance contract: a /v1/topk response is
// byte-identical to encoding the results of a direct ShardedIndex.TopK call
// — through the coalescing path and through the direct (coalescing
// disabled) path alike.
func TestTopKGolden(t *testing.T) {
	idx := testIndex(t, 5_000, 1)
	queries := testQueries(20, 2)

	for _, mode := range []struct {
		name string
		opts []Option
	}{
		{"coalesced", nil},
		{"direct", []Option{WithCoalesceWindow(-1)}},
		{"instant-window", []Option{WithCoalesceWindow(0)}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			srv := New(idx, mode.opts...)
			defer srv.Close()
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			for i, q := range queries {
				direct, err := idx.TopK(q)
				if err != nil {
					t.Fatal(err)
				}
				status, body := post(t, ts.Client(), ts.URL+"/v1/topk", queryBody(t, q))
				if status != http.StatusOK {
					t.Fatalf("query %d: status %d: %s", i, status, body)
				}
				if want := goldenBody(t, direct); !bytes.Equal(body, want) {
					t.Fatalf("query %d: response not byte-identical to direct TopK\ngot  %s\nwant %s", i, body, want)
				}
			}
		})
	}
}

// TestBatchGolden: /v1/batch responses must match direct BatchTopK byte for
// byte.
func TestBatchGolden(t *testing.T) {
	idx := testIndex(t, 5_000, 3)
	queries := testQueries(8, 4)
	srv := New(idx)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	wire := make([]json.RawMessage, len(queries))
	for i, q := range queries {
		wire[i] = queryBody(t, q)
	}
	body, err := json.Marshal(map[string]any{"queries": wire})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := idx.BatchTopK(queries)
	if err != nil {
		t.Fatal(err)
	}
	resp := batchResponse{Results: make([][]wireResult, len(direct))}
	for i, res := range direct {
		resp.Results[i] = wireResults(res)
	}
	want, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')

	status, got := post(t, ts.Client(), ts.URL+"/v1/batch", body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("batch response not byte-identical to direct BatchTopK\ngot  %s\nwant %s", got, want)
	}
}

// TestErrorShapes: malformed requests answer 400 with the JSON error
// envelope — and a decodable-but-engine-invalid query (a role flip) fails
// alone without poisoning the batch it was coalesced into.
func TestErrorShapes(t *testing.T) {
	idx := testIndex(t, 1_000, 5)
	srv := New(idx)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
	}{
		{"truncated-json", `{"point": [0.1, 0.2`},
		{"k-zero", `{"point":[0.1,0.2,0.3,0.4],"k":0,"roles":["r","a","r","a"]}`},
		{"k-missing", `{"point":[0.1,0.2,0.3,0.4],"roles":["r","a","r","a"]}`},
		{"wrong-dims", `{"point":[0.1,0.2],"k":3,"roles":["r","a"]}`},
		{"roles-length", `{"point":[0.1,0.2,0.3,0.4],"k":3,"roles":["r","a"]}`},
		{"bad-role", `{"point":[0.1,0.2,0.3,0.4],"k":3,"roles":["r","a","r","sideways"]}`},
		{"negative-weight", `{"point":[0.1,0.2,0.3,0.4],"k":3,"roles":["r","a","r","a"],"weights":[1,1,1,-0.5]}`},
		{"weights-length", `{"point":[0.1,0.2,0.3,0.4],"k":3,"roles":["r","a","r","a"],"weights":[1]}`},
		{"all-ignored", `{"point":[0.1,0.2,0.3,0.4],"k":3,"roles":["i","i","i","i"]}`},
		{"unknown-field", `{"point":[0.1,0.2,0.3,0.4],"k":3,"roles":["r","a","r","a"],"fanciness":9}`},
		{"trailing-data", `{"point":[0.1,0.2,0.3,0.4],"k":3,"roles":["r","a","r","a"]} {"point":[0.9,0.9,0.9,0.9],"k":1,"roles":["r","a","r","a"]}`},
		{"role-flip", `{"point":[0.1,0.2,0.3,0.4],"k":3,"roles":["a","r","a","r"]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := post(t, ts.Client(), ts.URL+"/v1/topk", []byte(tc.body))
			if status != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", status, body)
			}
			var er errorResponse
			if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
				t.Fatalf("error envelope missing: %s (unmarshal err %v)", body, err)
			}
		})
	}

	// The role-flip request above rode the coalescer; a well-formed query
	// submitted concurrently with flips must still answer correctly.
	queries := testQueries(4, 6)
	bodies := make([][]byte, len(queries))
	goldens := make([][]byte, len(queries))
	for i, q := range queries {
		direct, err := idx.TopK(q)
		if err != nil {
			t.Fatal(err)
		}
		bodies[i] = queryBody(t, q)
		goldens[i] = goldenBody(t, direct)
	}
	flip := []byte(cases[len(cases)-1].body)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				if _, _, err := postE(ts.Client(), ts.URL+"/v1/topk", flip); err != nil {
					t.Error(err)
				}
				return
			}
			qi := i / 2 % len(queries)
			status, body, err := postE(ts.Client(), ts.URL+"/v1/topk", bodies[qi])
			if err != nil {
				t.Error(err)
				return
			}
			if status != http.StatusOK {
				t.Errorf("good query got status %d: %s", status, body)
				return
			}
			if !bytes.Equal(body, goldens[qi]) {
				t.Errorf("good query poisoned by coalesced bad neighbor\ngot  %s\nwant %s", body, goldens[qi])
			}
		}(i)
	}
	wg.Wait()
}

// TestInsertRemove exercises the write endpoints end to end.
func TestInsertRemove(t *testing.T) {
	idx := testIndex(t, 500, 7)
	srv := New(idx)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	before := idx.Len()
	status, body := post(t, ts.Client(), ts.URL+"/v1/insert", []byte(`{"point":[0.5,0.5,0.5,0.5]}`))
	if status != http.StatusOK {
		t.Fatalf("insert status %d: %s", status, body)
	}
	var ins insertResponse
	if err := json.Unmarshal(body, &ins); err != nil {
		t.Fatal(err)
	}
	if ins.ID != before {
		t.Fatalf("insert id %d, want %d", ins.ID, before)
	}
	if idx.Len() != before+1 {
		t.Fatalf("Len %d after insert, want %d", idx.Len(), before+1)
	}

	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/points/%d", ts.URL, ins.ID), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Both attempts answer removed:true — deletes are ack-idempotent: a
	// retried DELETE whose first attempt committed (ack lost) finds the
	// tombstone and reports the same success the original would have.
	for attempt, wantRemoved := range []bool{true, true} {
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("delete status %d: %s", resp.StatusCode, out)
		}
		var rm removeResponse
		if err := json.Unmarshal(out, &rm); err != nil {
			t.Fatal(err)
		}
		if rm.Removed != wantRemoved {
			t.Fatalf("delete attempt %d: removed=%v, want %v", attempt, rm.Removed, wantRemoved)
		}
	}
	if idx.Len() != before {
		t.Fatalf("Len %d after delete, want %d", idx.Len(), before)
	}

	status, body = post(t, ts.Client(), ts.URL+"/v1/insert", []byte(`{"point":[0.5]}`))
	if status != http.StatusBadRequest {
		t.Fatalf("bad-dims insert: status %d: %s", status, body)
	}
}

// TestObservabilityEndpoints sanity-checks /healthz, /metrics, and /statz.
func TestObservabilityEndpoints(t *testing.T) {
	idx := testIndex(t, 1_000, 9)
	srv := New(idx)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, q := range testQueries(4, 10) {
		if status, body := post(t, ts.Client(), ts.URL+"/v1/topk", queryBody(t, q)); status != http.StatusOK {
			t.Fatalf("topk status %d: %s", status, body)
		}
	}
	// A stats-enabled query feeds the engine counters.
	q := testQueries(1, 11)[0]
	wq := queryBody(t, q)
	wq = append(wq[:len(wq)-1], []byte(`,"stats":true}`)...)
	status, body := post(t, ts.Client(), ts.URL+"/v1/topk", wq)
	if status != http.StatusOK {
		t.Fatalf("stats topk status %d: %s", status, body)
	}
	var tr topkResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Stats == nil || tr.Stats.Fetched == 0 {
		t.Fatalf("stats=true response carries no work counters: %s", body)
	}

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	resp, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, metric := range []string{
		"sdserver_requests_total{endpoint=\"topk\"}",
		"sdserver_request_duration_seconds_bucket",
		"sdserver_coalesced_batches_total",
		"sdserver_index_points",
		"sdserver_index_segments",
		"sdserver_index_compactions_total",
		"sdserver_engine_fetched_total",
	} {
		if !bytes.Contains(prom, []byte(metric)) {
			t.Fatalf("/metrics missing %q:\n%s", metric, prom)
		}
	}

	resp, err = ts.Client().Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st Statz
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("statz did not parse: %v\n%s", err, raw)
	}
	if st.Endpoints["topk"].Requests < 5 {
		t.Fatalf("statz records %d topk requests, want ≥ 5", st.Endpoints["topk"].Requests)
	}
	if st.EngineFetched == 0 || st.StatsQueries != 1 {
		t.Fatalf("statz engine counters not wired: %+v", st)
	}

	// Drain: healthz flips to 503 after Shutdown.
	if err := srv.Shutdown(t.Context()); err != nil {
		t.Fatal(err)
	}
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: status %d, want 503", resp.StatusCode)
	}
}

// TestSwapUnderLoad is the zero-downtime acceptance test: clients hammer
// /v1/topk while an admin swap replaces the index mid-flight. Every
// response must be byte-identical to either the old or the new index's
// direct answer — never an error, never a mixture — and once the swap call
// returns, fresh requests must answer from the new index.
func TestSwapUnderLoad(t *testing.T) {
	idxA := testIndex(t, 4_000, 20)
	idxB := testIndex(t, 3_000, 21)

	dir := t.TempDir()
	path := filepath.Join(dir, "b.sdx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := idxB.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	srv := New(idxA, WithQueueDepth(4096))
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	queries := testQueries(8, 22)
	goldenA := make([][]byte, len(queries))
	goldenB := make([][]byte, len(queries))
	for i, q := range queries {
		resA, err := idxA.TopK(q)
		if err != nil {
			t.Fatal(err)
		}
		resB, err := idxB.TopK(q)
		if err != nil {
			t.Fatal(err)
		}
		goldenA[i] = goldenBody(t, resA)
		goldenB[i] = goldenBody(t, resB)
		if bytes.Equal(goldenA[i], goldenB[i]) {
			t.Fatalf("query %d: indexes answer identically; the swap test needs distinguishable answers", i)
		}
	}

	const clients = 6
	bodies := make([][]byte, len(queries))
	for i, q := range queries {
		bodies[i] = queryBody(t, q)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			qi := w % len(queries)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				status, out, err := postE(ts.Client(), ts.URL+"/v1/topk", bodies[qi])
				if err != nil {
					errc <- fmt.Errorf("client %d req %d: %w", w, i, err)
					return
				}
				if status != http.StatusOK {
					errc <- fmt.Errorf("client %d req %d: status %d: %s", w, i, status, out)
					return
				}
				if !bytes.Equal(out, goldenA[qi]) && !bytes.Equal(out, goldenB[qi]) {
					errc <- fmt.Errorf("client %d req %d: torn response\ngot %s", w, i, out)
					return
				}
			}
		}(w)
	}

	time.Sleep(20 * time.Millisecond) // let the clients establish load
	swapBody, _ := json.Marshal(wireSwap{Path: path})
	status, out := post(t, ts.Client(), ts.URL+"/v1/admin/swap", swapBody)
	if status != http.StatusOK {
		t.Fatalf("swap status %d: %s", status, out)
	}
	var sr swapResponse
	if err := json.Unmarshal(out, &sr); err != nil || !sr.Swapped || sr.Points != idxB.Len() {
		t.Fatalf("swap response %s (err %v)", out, err)
	}
	time.Sleep(20 * time.Millisecond) // keep load on the swapped index
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// Post-swap: every query must answer from the new index.
	for i, q := range queries {
		status, out := post(t, ts.Client(), ts.URL+"/v1/topk", queryBody(t, q))
		if status != http.StatusOK {
			t.Fatalf("post-swap query %d: status %d: %s", i, status, out)
		}
		if !bytes.Equal(out, goldenB[i]) {
			t.Fatalf("post-swap query %d answered from the old index\ngot  %s\nwant %s", i, out, goldenB[i])
		}
	}
	if st := srv.Statz(); st.Swaps != 1 {
		t.Fatalf("statz records %d swaps, want 1", st.Swaps)
	}
}

// slowIndex delegates to a real index but holds every batch call until
// released — the deterministic way to fill the admission pipeline. The
// context form honors cancellation while parked, like the real engine.
type slowIndex struct {
	Index
	gate chan struct{}
}

func (s *slowIndex) BatchTopK(queries []sdquery.Query) ([][]sdquery.Result, error) {
	<-s.gate
	return s.Index.BatchTopK(queries)
}

func (s *slowIndex) BatchTopKContext(ctx context.Context, queries []sdquery.Query) ([][]sdquery.Result, error) {
	select {
	case <-s.gate:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return s.Index.BatchTopKContext(ctx, queries)
}

// TestBackpressure: with one executor wedged, one queue slot, and one-query
// batches, surplus requests must be rejected 429 with Retry-After instead
// of piling up.
func TestBackpressure(t *testing.T) {
	idx := testIndex(t, 500, 30)
	slow := &slowIndex{Index: idx, gate: make(chan struct{})}
	srv := New(slow, WithQueueDepth(1), WithExecutors(1), WithMaxBatch(1), WithCoalesceWindow(0))
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := queryBody(t, testQueries(1, 31)[0])
	results := make(chan int, 8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := ts.Client().Post(ts.URL+"/v1/topk", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
			results <- resp.StatusCode
		}()
	}
	// Give the requests time to pile into the (wedged) pipeline, then open
	// the gate so the survivors complete.
	time.Sleep(100 * time.Millisecond)
	close(slow.gate)
	wg.Wait()
	close(results)
	ok, rejected := 0, 0
	for code := range results {
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Fatalf("unexpected status %d", code)
		}
	}
	if rejected == 0 {
		t.Fatal("no request was rejected: backpressure did not engage")
	}
	if ok == 0 {
		t.Fatal("every request was rejected: admission accepted nothing")
	}
	if st := srv.Statz(); st.Endpoints["topk"].Rejected != uint64(rejected) {
		t.Fatalf("statz rejected=%d, observed %d", st.Endpoints["topk"].Rejected, rejected)
	}
}

// TestRequestTimeout: a request whose deadline cannot be met answers 503.
func TestRequestTimeout(t *testing.T) {
	idx := testIndex(t, 500, 32)
	slow := &slowIndex{Index: idx, gate: make(chan struct{})}
	srv := New(slow, WithRequestTimeout(30*time.Millisecond))
	defer func() {
		close(slow.gate) // release the wedged executor before teardown
		srv.Close()
	}()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := queryBody(t, testQueries(1, 33)[0])
	status, out := post(t, ts.Client(), ts.URL+"/v1/topk", body)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", status, out)
	}
}
