package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	sdquery "repro"
	"repro/internal/dataset"
)

// statzOf fetches and decodes GET /statz.
func statzOf(t *testing.T, client *http.Client, base string) Statz {
	t.Helper()
	resp, err := client.Get(base + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Statz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestCacheDifferentialUnderChurn is the cache's acceptance test: with the
// result cache on, every /v1/topk response — first touch, warm hit, or
// post-mutation re-ask — must be byte-identical to encoding a direct TopK
// call against the live index at that moment. Inserts and removes run
// through the HTTP API between rounds, and a small memtable keeps the
// background compactor churning epochs underneath, so any stale entry that
// survived its epoch would surface as a byte mismatch here.
func TestCacheDifferentialUnderChurn(t *testing.T) {
	idx := testIndex(t, 2000, 11, sdquery.WithMemtableSize(64))
	srv := New(idx, WithResultCache(true), WithCacheCapacity(64), WithCoalesceWindow(0))
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	queries := testQueries(6, 5)
	rng := rand.New(rand.NewSource(9))
	nextID := idx.Len()
	for round := 0; round < 15; round++ {
		// Ask each query several times: the repeats are cache hits once the
		// sketch warms, and every answer must match a fresh direct call.
		for qi, q := range queries {
			direct, err := idx.TopK(q)
			if err != nil {
				t.Fatal(err)
			}
			want := goldenBody(t, direct)
			for rep := 0; rep < 3; rep++ {
				status, got := post(t, client, ts.URL+"/v1/topk", queryBody(t, q))
				if status != http.StatusOK {
					t.Fatalf("round %d query %d rep %d: status %d: %s", round, qi, rep, status, got)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("round %d query %d rep %d: response diverged from direct TopK\ngot:  %s\nwant: %s",
						round, qi, rep, got, want)
				}
			}
		}
		// Mutate through the API: a handful of inserts (eventually sealing
		// memtables and triggering compaction) and one remove.
		for i := 0; i < 40; i++ {
			p := make([]float64, len(testRoles()))
			for d := range p {
				p[d] = rng.Float64()
			}
			body, _ := json.Marshal(map[string]any{"point": p})
			if status, out := post(t, client, ts.URL+"/v1/insert", body); status != http.StatusOK {
				t.Fatalf("insert: status %d: %s", status, out)
			}
			nextID++
		}
		req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/points/%d", ts.URL, rng.Intn(nextID)), nil)
		if resp, err := client.Do(req); err != nil {
			t.Fatal(err)
		} else {
			resp.Body.Close()
		}
	}
	st := statzOf(t, client, ts.URL)
	if !st.CacheEnabled {
		t.Fatal("statz reports the cache disabled")
	}
	if st.CacheHits == 0 {
		t.Fatal("no cache hits over 15 rounds of repeated queries")
	}
	if st.CacheHitRate <= 0 {
		t.Fatalf("cache_hit_rate %v, want > 0", st.CacheHitRate)
	}
}

// TestCacheInvalidationOnSwap: entries cached against one index must never
// be served after an in-process Swap publishes another — the new box
// generation makes every old entry stale at once.
func TestCacheInvalidationOnSwap(t *testing.T) {
	idxA := testIndex(t, 600, 1)
	idxB := testIndex(t, 600, 2)
	srv := New(idxA, WithResultCache(true), WithCoalesceWindow(0))
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	q := testQueries(1, 3)[0]
	directA, err := idxA.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	wantA := goldenBody(t, directA)
	for rep := 0; rep < 5; rep++ {
		if _, got := post(t, client, ts.URL+"/v1/topk", queryBody(t, q)); !bytes.Equal(got, wantA) {
			t.Fatalf("pre-swap rep %d: response diverged from idxA", rep)
		}
	}
	if st := statzOf(t, client, ts.URL); st.CacheHits == 0 {
		t.Fatal("query never hit the cache before the swap")
	}

	srv.Swap(idxB)
	directB, err := idxB.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	wantB := goldenBody(t, directB)
	if bytes.Equal(wantA, wantB) {
		t.Fatal("test indexes answer identically; swap invalidation not exercised")
	}
	for rep := 0; rep < 3; rep++ {
		if _, got := post(t, client, ts.URL+"/v1/topk", queryBody(t, q)); !bytes.Equal(got, wantB) {
			t.Fatalf("post-swap rep %d: served idxA's cached answer after swapping to idxB", rep)
		}
	}
}

// TestCoalescedSwapDims is the regression test for the decode/execute race:
// a query decoded against a 4-dim index, parked in the coalescing window
// while a swap publishes a 3-dim index, must still execute against the
// 4-dim index it was validated for (and answer its bytes) — not be handed
// to an index where its dimensionality is wrong.
func TestCoalescedSwapDims(t *testing.T) {
	idxA := testIndex(t, 400, 4)
	roles3 := []sdquery.Role{sdquery.Repulsive, sdquery.Attractive, sdquery.Repulsive}
	idxB, err := sdquery.NewShardedIndex(dataset.Generate(dataset.Uniform, 400, len(roles3), 8), roles3, sdquery.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(idxB.Close)

	// A long window parks the first request in the collector while the swap
	// lands.
	srv := New(idxA, WithCoalesceWindow(400*time.Millisecond))
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	q := testQueries(1, 6)[0]
	directA, err := idxA.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	wantA := goldenBody(t, directA)

	type reply struct {
		status int
		body   []byte
		err    error
	}
	done := make(chan reply, 1)
	go func() {
		status, body, err := postE(client, ts.URL+"/v1/topk", queryBody(t, q))
		done <- reply{status, body, err}
	}()
	// Let the request decode and enqueue, then swap mid-window.
	time.Sleep(120 * time.Millisecond)
	srv.Swap(idxB)
	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.status != http.StatusOK {
		t.Fatalf("parked 4-dim query answered %d after 3-dim swap: %s", r.status, r.body)
	}
	if !bytes.Equal(r.body, wantA) {
		t.Fatalf("parked query's answer diverged from its decode-time index\ngot:  %s\nwant: %s", r.body, wantA)
	}

	// The swapped-in index serves 3-dim queries; 4-dim queries are now 400s.
	q3 := sdquery.Query{Point: []float64{0.2, 0.4, 0.6}, K: 3, Roles: roles3, Weights: []float64{1, 1, 1}}
	directB, err := idxB.TopK(q3)
	if err != nil {
		t.Fatal(err)
	}
	status, got := post(t, client, ts.URL+"/v1/topk", queryBody(t, q3))
	if status != http.StatusOK || !bytes.Equal(got, goldenBody(t, directB)) {
		t.Fatalf("post-swap 3-dim query: status %d, body %s", status, got)
	}
	if status, _ := post(t, client, ts.URL+"/v1/topk", queryBody(t, q)); status != http.StatusBadRequest {
		t.Fatalf("4-dim query against 3-dim index answered %d, want 400", status)
	}
}

// TestStatusFor pins the error→status table, in particular that a client
// cancellation is 499 (not a server error) and that a request carrying both
// cancellation and a passed deadline blames the deadline.
func TestStatusFor(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"queue full", errQueueFull, http.StatusTooManyRequests},
		{"deadline", context.DeadlineExceeded, http.StatusServiceUnavailable},
		{"draining", errDraining, http.StatusServiceUnavailable},
		{"canceled", context.Canceled, statusClientClosedRequest},
		{"wrapped canceled", fmt.Errorf("shard 3: %w", context.Canceled), statusClientClosedRequest},
		{"wrapped deadline", fmt.Errorf("shard 1: %w", context.DeadlineExceeded), http.StatusServiceUnavailable},
		{"both deadline and canceled", errors.Join(context.Canceled, context.DeadlineExceeded), http.StatusServiceUnavailable},
		{"validation", errors.New("k must be ≥ 1"), http.StatusBadRequest},
	}
	for _, tc := range cases {
		if got := statusFor(tc.err); got != tc.want {
			t.Errorf("%s: statusFor = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestClientDisconnectCounted: an e2e client hang-up during engine work must
// finish as a 499 — counted in the disconnect column, never in errors.
func TestClientDisconnectCounted(t *testing.T) {
	idx := testIndex(t, 400, 12)
	slow := &slowIndex{Index: idx, gate: make(chan struct{})}
	srv := New(slow, WithCoalesceWindow(0))
	defer srv.Close()
	defer close(slow.gate)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/topk",
		bytes.NewReader(queryBody(t, testQueries(1, 13)[0])))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(60 * time.Millisecond)
		cancel()
	}()
	if _, err := ts.Client().Do(req); err == nil {
		t.Fatal("cancelled request returned without error")
	}
	// The handler finishes asynchronously after the client is gone; wait for
	// the metrics to land.
	deadline := time.After(2 * time.Second)
	for {
		st := srv.Statz().Endpoints["topk"]
		if st.Disconnects >= 1 {
			if st.Errors != 0 {
				t.Fatalf("client disconnect also counted as %d server errors", st.Errors)
			}
			return
		}
		select {
		case <-deadline:
			t.Fatalf("disconnect never counted: %+v", st)
		case <-time.After(10 * time.Millisecond):
		}
	}
}
