package serve

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	sdquery "repro"
)

// Follower mode: a Server that mirrors a leader instead of owning writes.
// NewFollower bootstraps an index from the leader's /v1/repl/segment
// snapshots, serves reads from it exactly like any Server, and runs a pull
// loop that tails the leader's WAL to stay fresh:
//
//	poll:  GET /v1/repl/manifest          — leader position + source token
//	       GET /v1/repl/wal?shard&from    — per lagging shard; apply by LSN
//
// The apply path is crash recovery's: records at or below the shard's
// last-applied LSN are skipped, successors apply, anything else is a gap.
// That makes every pull idempotent — a retried or duplicated tail re-applies
// as a no-op — so the loop needs no careful exactly-once transport.
//
// Three events force a full re-bootstrap (fresh snapshots, atomically
// published with Server.Swap so in-flight reads finish on the old index):
// the leader's source token changes (restart or index swap — the LSN cursor
// may describe a different history), a /wal request answers 410 Gone (a
// checkpoint retired the range this follower still needs), or the apply
// itself reports ErrReplGap. Until the re-bootstrap succeeds the follower
// keeps serving its last good snapshot — stale but correct, and honestly
// labeled by the X-SD-Repl-Lsns freshness header on every response.
//
// Followers are read-only: /v1/insert, DELETE, and /v1/admin/swap answer
// 503 with a Retry-After header and an X-SD-Leader hint (the replication
// loop owns the index; a local write would fork it from the leader).

// followerState is the per-follower half of Server.
type followerState struct {
	leaderURL string
	client    *http.Client
	interval  time.Duration
	loadOpts  []sdquery.SDOption

	mu     sync.Mutex // guards source
	source string

	lag        atomic.Uint64 // sum over shards of leaderLSN − appliedLSN
	lastPull   atomic.Int64  // unix nanos of the last successful poll
	pulls      atomic.Uint64
	pullErrs   atomic.Uint64
	bootstraps atomic.Uint64 // re-bootstraps after the initial one

	stopOnce sync.Once
	quit     chan struct{}
	done     chan struct{}
}

// WithFollowInterval sets how often a follower polls its leader for new WAL
// records (default 200ms). Lower is fresher; each poll is one manifest GET
// plus one /wal GET per lagging shard.
func WithFollowInterval(d time.Duration) Option {
	return func(c *config) { c.followInterval = d }
}

// NewFollower builds a read-only Server mirroring the leader at leaderURL.
// It bootstraps synchronously (snapshots are fetched and loaded before
// NewFollower returns, so a returned follower is immediately serving) and
// then keeps itself fresh in the background until Close or Shutdown. All
// serving options apply as usual; WithLoadOptions supplies the runtime knobs
// for the replicated index, WithFollowInterval the poll cadence.
func NewFollower(leaderURL string, opts ...Option) (*Server, error) {
	var probe config
	for _, o := range opts {
		o(&probe)
	}
	f := &followerState{
		leaderURL: strings.TrimRight(leaderURL, "/"),
		client:    &http.Client{Timeout: 30 * time.Second},
		interval:  probe.followInterval,
		loadOpts:  probe.loadOpts,
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	if f.interval <= 0 {
		f.interval = 200 * time.Millisecond
	}
	// The leader may still be coming up (both nodes launched together); a
	// few paced attempts cover that without hiding a dead address for long.
	var idx Index
	var src string
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		if idx, src, err = f.bootstrap(); err == nil {
			break
		}
		time.Sleep(time.Duration(attempt+1) * 200 * time.Millisecond)
	}
	if err != nil {
		return nil, fmt.Errorf("serve: follower bootstrap from %s: %w", f.leaderURL, err)
	}
	f.source = src
	s := New(idx, opts...)
	s.repl.Store(f)
	s.ownsIndex.Store(true)
	go s.followLoop(f)
	return s, nil
}

// Follower reports the leader URL this server follows ("" for a leader).
func (s *Server) Follower() string {
	f := s.repl.Load()
	if f == nil {
		return ""
	}
	return f.leaderURL
}

// Generation reports the node's cluster generation — the fencing token the
// promotion protocol moves forward (promote.go). 0 until the node has ever
// been promoted or demoted.
func (s *Server) Generation() uint64 { return s.gen.Load() }

// ReplLag reports the follower's current replication lag in records (0 for
// a leader): the sum over shards of the leader's last-seen LSN minus the
// locally applied LSN.
func (s *Server) ReplLag() uint64 {
	f := s.repl.Load()
	if f == nil {
		return 0
	}
	return f.lag.Load()
}

// manifest fetches and validates the leader's replication manifest.
func (f *followerState) manifest() (replManifest, error) {
	resp, err := f.client.Get(f.leaderURL + "/v1/repl/manifest")
	if err != nil {
		return replManifest{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return replManifest{}, fmt.Errorf("manifest: leader answered %d", resp.StatusCode)
	}
	var m replManifest
	if err := strictDecode(mustReadAll(resp.Body), &m); err != nil {
		return replManifest{}, fmt.Errorf("manifest: %w", err)
	}
	if m.Format != replFormat {
		return replManifest{}, fmt.Errorf("manifest: leader speaks %q, this follower %q", m.Format, replFormat)
	}
	if m.Shards < 1 || m.Shards != len(m.LSNs) {
		return replManifest{}, fmt.Errorf("manifest: %d shards with %d lsns", m.Shards, len(m.LSNs))
	}
	return m, nil
}

func mustReadAll(r io.Reader) []byte {
	data, err := io.ReadAll(io.LimitReader(r, maxBodyBytes))
	if err != nil {
		return nil
	}
	return data
}

// bootstrap pulls a full snapshot set and assembles a serving index from it.
func (f *followerState) bootstrap() (Index, string, error) {
	m, err := f.manifest()
	if err != nil {
		return nil, "", err
	}
	readers := make([]io.Reader, m.Shards)
	for si := 0; si < m.Shards; si++ {
		resp, err := f.client.Get(fmt.Sprintf("%s/v1/repl/segment?shard=%d", f.leaderURL, si))
		if err != nil {
			return nil, "", fmt.Errorf("segment %d: %w", si, err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, "", fmt.Errorf("segment %d: leader answered %d", si, resp.StatusCode)
		}
		if src := resp.Header.Get(headerReplSource); src != m.Source {
			// The leader swapped or restarted between the manifest and this
			// segment; the set would mix histories. Caller retries.
			resp.Body.Close()
			return nil, "", fmt.Errorf("segment %d: leader source changed mid-bootstrap (%s → %s)", si, m.Source, src)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, "", fmt.Errorf("segment %d: %w", si, err)
		}
		readers[si] = bytes.NewReader(data)
	}
	idx, err := sdquery.NewFollowerIndex(readers, f.loadOpts...)
	if err != nil {
		return nil, "", err
	}
	return idx, m.Source, nil
}

// followLoop polls the leader until the server closes or the node is
// promoted. f is passed in rather than loaded from s.repl: the pointer can
// be swapped (demotion re-points it at a new followerState) and each loop
// must keep driving exactly the state it was started with.
func (s *Server) followLoop(f *followerState) {
	defer close(f.done)
	t := time.NewTicker(f.interval)
	defer t.Stop()
	for {
		select {
		case <-f.quit:
			return
		case <-t.C:
			if err := s.pullOnce(f); err != nil {
				f.pullErrs.Add(1)
			} else {
				f.pulls.Add(1)
				f.lastPull.Store(time.Now().UnixNano())
			}
		}
	}
}

// pullOnce advances the follower by one poll: fetch the leader's position,
// tail every lagging shard, update the lag gauge. Any gap signal ends in a
// re-bootstrap; any transport error is left for the next tick.
func (s *Server) pullOnce(f *followerState) error {
	m, err := f.manifest()
	if err != nil {
		return err
	}
	f.mu.Lock()
	src := f.source
	f.mu.Unlock()
	if m.Source != src {
		return s.rebootstrap(f)
	}
	ra, ok := s.Index().(replApplier)
	if !ok {
		return fmt.Errorf("serve: follower index lost its replication surface")
	}
	applied := ra.ShardLSNs()
	if len(applied) != len(m.LSNs) {
		return s.rebootstrap(f)
	}
	for si := range applied {
		// The leader caps each /wal response, so one poll may take several
		// pulls to reach the manifest position; loop until caught up to the
		// position this poll observed (the leader moving further meanwhile
		// is the next tick's work).
		for applied[si] < m.LSNs[si] {
			resp, err := f.client.Get(fmt.Sprintf("%s/v1/repl/wal?shard=%d&from=%d", f.leaderURL, si, applied[si]))
			if err != nil {
				return err
			}
			if resp.StatusCode == http.StatusGone {
				resp.Body.Close()
				return s.rebootstrap(f)
			}
			if resp.StatusCode != http.StatusOK {
				resp.Body.Close()
				return fmt.Errorf("wal shard %d: leader answered %d", si, resp.StatusCode)
			}
			if src := resp.Header.Get(headerReplSource); src != m.Source {
				resp.Body.Close()
				return s.rebootstrap(f)
			}
			n, err := ra.ApplyReplWAL(si, resp.Body)
			resp.Body.Close()
			if errors.Is(err, sdquery.ErrReplGap) {
				return s.rebootstrap(f)
			}
			if err != nil {
				return err
			}
			if n == 0 {
				// No forward progress; leave the rest for the next tick
				// rather than spin.
				break
			}
			applied[si] = ra.ShardLSNs()[si]
		}
	}
	var lag uint64
	applied = ra.ShardLSNs()
	for si := range m.LSNs {
		if si < len(applied) && m.LSNs[si] > applied[si] {
			lag += m.LSNs[si] - applied[si]
		}
	}
	f.lag.Store(lag)
	return nil
}

// rebootstrap replaces the follower's index with a fresh snapshot set. The
// swap is the same atomic publication /v1/admin/swap uses, so readers never
// observe a torn index; the displaced index only has its worker pool to
// release (follower indexes own no WAL).
func (s *Server) rebootstrap(f *followerState) error {
	idx, src, err := f.bootstrap()
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.source = src
	f.mu.Unlock()
	old := s.Swap(idx)
	if c, ok := old.(closer); ok && old != idx {
		c.Close()
	}
	f.bootstraps.Add(1)
	return nil
}

// stop ends the pull loop and waits for it.
func (f *followerState) stop() {
	f.stopOnce.Do(func() { close(f.quit) })
	<-f.done
}
