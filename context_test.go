package sdquery

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/dataset"
)

// TestTopKContextCancel pins the cancellation contract on both index kinds:
// a context cancelled before the call returns promptly with ctx.Err() and no
// results; an uncancelled context answers byte-identically to the plain
// path; and a mid-flight deadline yields either the full correct answer
// (the query beat the clock) or context.DeadlineExceeded — never a partial
// or wrong result set.
func TestTopKContextCancel(t *testing.T) {
	data := dataset.Generate(dataset.Uniform, 20_000, 4, 3)
	roles := allocRoles()
	q := allocQuery()

	sd, err := NewSDIndex(data, roles)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewShardedIndex(data, roles, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()

	want, err := sd.TopK(q)
	if err != nil {
		t.Fatal(err)
	}

	type ctxEngine struct {
		name string
		run  func(ctx context.Context) ([]Result, error)
	}
	engines := []ctxEngine{
		{"sdindex", func(ctx context.Context) ([]Result, error) { return sd.TopKContext(ctx, q) }},
		{"sharded", func(ctx context.Context) ([]Result, error) { return sharded.TopKContext(ctx, q) }},
	}
	for _, e := range engines {
		// Pre-cancelled: prompt ctx.Err(), no results.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		start := time.Now()
		res, err := e.run(ctx)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: pre-cancelled context: err = %v, want context.Canceled", e.name, err)
		}
		if len(res) != 0 {
			t.Fatalf("%s: pre-cancelled context returned %d results", e.name, len(res))
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Fatalf("%s: pre-cancelled query took %v, want prompt return", e.name, d)
		}

		// Live context: identical to the plain path.
		got, err := e.run(context.Background())
		if err != nil {
			t.Fatalf("%s: live context: %v", e.name, err)
		}
		sameResults(t, e.name+"/live-context", got, want)

		// Mid-flight deadline: either the exact answer or the ctx error.
		tctx, tcancel := context.WithTimeout(context.Background(), 20*time.Microsecond)
		got, err = e.run(tctx)
		tcancel()
		switch {
		case err == nil:
			sameResults(t, e.name+"/beat-the-clock", got, want)
		case errors.Is(err, context.DeadlineExceeded):
		default:
			t.Fatalf("%s: deadline run: unexpected error %v", e.name, err)
		}
	}
}

// TestTopKContextLeaksNoPooledBuffers is the serving layer's resource
// guarantee: a storm of cancelled queries must return every pooled context
// (stream heaps, bitsets, scratch buffers) to the engine pools, so the
// zero-allocation steady state of the uncancelled hot path survives intact.
func TestTopKContextLeaksNoPooledBuffers(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on otherwise alloc-free paths")
	}
	data := dataset.Generate(dataset.Uniform, 10_000, 4, 1)
	idx, err := NewSDIndex(data, allocRoles())
	if err != nil {
		t.Fatal(err)
	}
	q := allocQuery()
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 200; i++ {
		if _, err := idx.TopKContext(canceled, q); !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled query %d: err = %v", i, err)
		}
		// Interleave live queries so cancelled and completed paths share the
		// same pool cycle.
		if _, err := idx.TopK(q); err != nil {
			t.Fatal(err)
		}
	}
	var buf []Result
	avg := measureAllocs(func() {
		var err error
		buf, err = idx.TopKAppend(buf[:0], q)
		if err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("hot path allocates %.2f objects per query after cancellation storm, want 0 (pooled buffer leak)", avg)
	}
	if len(buf) != q.K {
		t.Fatalf("got %d results, want %d", len(buf), q.K)
	}
}
