package sdquery

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dataset"
)

// TestConcurrentQueries: a shared SDIndex must serve parallel queries with
// answers identical to the sequential ones (the read-only query path holds
// all per-query state in cursors).
func TestConcurrentQueries(t *testing.T) {
	data := dataset.Generate(dataset.AntiCorrelated, 30_000, 4, 8)
	roles := []Role{Repulsive, Attractive, Repulsive, Attractive}
	idx, err := NewSDIndex(data, roles)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	const nq = 64
	queries := make([]Query, nq)
	for i := range queries {
		queries[i] = Query{
			Point:   []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()},
			K:       1 + rng.Intn(10),
			Roles:   roles,
			Weights: []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()},
		}
	}
	sequential := make([][]Result, nq)
	for i, q := range queries {
		r, err := idx.TopK(q)
		if err != nil {
			t.Fatal(err)
		}
		sequential[i] = r
	}

	var wg sync.WaitGroup
	errs := make(chan error, nq*4)
	for worker := 0; worker < 4; worker++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < nq; i += 4 {
				got, err := idx.TopK(queries[i])
				if err != nil {
					errs <- err
					return
				}
				for j := range sequential[i] {
					if math.Abs(got[j].Score-sequential[i][j].Score) > 1e-12 {
						t.Errorf("query %d rank %d: concurrent %v vs sequential %v",
							i, j, got[j].Score, sequential[i][j].Score)
						return
					}
				}
			}
		}(worker)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
