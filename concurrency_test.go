package sdquery

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dataset"
)

// TestConcurrentQueries: a shared SDIndex must serve parallel queries with
// answers identical to the sequential ones (the read-only query path holds
// all per-query state in cursors).
func TestConcurrentQueries(t *testing.T) {
	data := dataset.Generate(dataset.AntiCorrelated, 30_000, 4, 8)
	roles := []Role{Repulsive, Attractive, Repulsive, Attractive}
	idx, err := NewSDIndex(data, roles)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	const nq = 64
	queries := make([]Query, nq)
	for i := range queries {
		queries[i] = Query{
			Point:   []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()},
			K:       1 + rng.Intn(10),
			Roles:   roles,
			Weights: []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()},
		}
	}
	sequential := make([][]Result, nq)
	for i, q := range queries {
		r, err := idx.TopK(q)
		if err != nil {
			t.Fatal(err)
		}
		sequential[i] = r
	}

	var wg sync.WaitGroup
	errs := make(chan error, nq*4)
	for worker := 0; worker < 4; worker++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < nq; i += 4 {
				got, err := idx.TopK(queries[i])
				if err != nil {
					errs <- err
					return
				}
				for j := range sequential[i] {
					if math.Abs(got[j].Score-sequential[i][j].Score) > 1e-12 {
						t.Errorf("query %d rank %d: concurrent %v vs sequential %v",
							i, j, got[j].Score, sequential[i][j].Score)
						return
					}
				}
			}
		}(worker)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestQueriesConcurrentWithCompaction hammers one SDIndex with lock-free
// queries while writers churn the row set hard enough (tiny memtable) that
// the background compactor continuously seals memtables and folds segments
// underneath them — plus explicit Compact calls racing everything. Queries
// pin explicit snapshots mid-churn and must keep answering byte-identically
// to the oracle frozen at acquisition; the settled index must agree with
// the mirror exactly. Run under -race this is the memory-model check for
// the snapshot publication protocol (atomic load on the read side, COW
// tombstones, append-shared memtable arrays).
func TestQueriesConcurrentWithCompaction(t *testing.T) {
	roles := []Role{Repulsive, Attractive, Repulsive}
	data := dataset.Generate(dataset.Uniform, 1_500, len(roles), 77)
	idx, err := NewSDIndex(data, roles, WithMemtableSize(32))
	if err != nil {
		t.Fatal(err)
	}

	var mirrorMu sync.Mutex
	mirror := append([][]float64(nil), data...)
	dead := make([]bool, len(mirror))

	newQuery := func(rng *rand.Rand) Query {
		q := Query{
			Point:   make([]float64, len(roles)),
			K:       1 + rng.Intn(10),
			Roles:   roles,
			Weights: make([]float64, len(roles)),
		}
		for d := range q.Point {
			q.Point[d] = rng.Float64()
			q.Weights[d] = rng.Float64()
		}
		return q
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	const steps = 200
	for w := 0; w < 3; w++ { // live-query goroutines (sanity-checked only)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			var buf []Result
			for i := 0; i < steps; i++ {
				var err error
				buf, err = idx.TopKAppend(buf[:0], newQuery(rng))
				if err != nil {
					fail(err)
					return
				}
				for j := 1; j < len(buf); j++ {
					if buf[j].Score > buf[j-1].Score {
						fail(fmt.Errorf("unsorted concurrent answer: %v", buf))
						return
					}
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ { // snapshot goroutines: exact frozen-oracle checks
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + w)))
			for i := 0; i < steps/10; i++ {
				// Freeze the mirror and the snapshot atomically with respect
				// to the writers, then verify the snapshot against that
				// frozen oracle while churn continues underneath.
				mirrorMu.Lock()
				snap := idx.Snapshot()
				frozenMirror := append([][]float64(nil), mirror...)
				frozenDead := append([]bool(nil), dead...)
				mirrorMu.Unlock()
				for qi := 0; qi < 5; qi++ {
					q := newQuery(rng)
					got, err := snap.TopK(q)
					if err != nil {
						fail(err)
						return
					}
					want := oracleTopK(frozenMirror, frozenDead, q)
					if len(got) != len(want) {
						fail(fmt.Errorf("snapshot: %d results, frozen oracle has %d", len(got), len(want)))
						return
					}
					for j := range want {
						if got[j] != want[j] {
							fail(fmt.Errorf("snapshot isolation violated at rank %d: %+v vs %+v", j, got[j], want[j]))
							return
						}
					}
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ { // writer goroutines
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(300 + w)))
			for i := 0; i < steps; i++ {
				mirrorMu.Lock()
				if rng.Intn(3) == 0 {
					id := rng.Intn(len(mirror))
					if idx.Remove(id) {
						dead[id] = true
					}
				} else {
					p := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
					id, err := idx.Insert(p)
					if err == nil && id != len(mirror) {
						err = fmt.Errorf("Insert returned id %d, want %d", id, len(mirror))
					}
					if err != nil {
						mirrorMu.Unlock()
						fail(err)
						return
					}
					mirror = append(mirror, p)
					dead = append(dead, false)
				}
				mirrorMu.Unlock()
			}
		}(w)
	}
	wg.Add(1)
	go func() { // full compactions racing the background compactor
		defer wg.Done()
		for i := 0; i < 6; i++ {
			idx.Compact()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Post-hoc consistency: the settled index answers exactly like the scan
	// oracle over the mirrored live rows — before and after a final Compact.
	live := 0
	for _, d := range dead {
		if !d {
			live++
		}
	}
	if idx.Len() != live {
		t.Fatalf("Len = %d, mirror has %d live rows", idx.Len(), live)
	}
	rng := rand.New(rand.NewSource(400))
	for phase := 0; phase < 2; phase++ {
		for i := 0; i < 20; i++ {
			q := newQuery(rng)
			got, err := idx.TopK(q)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, "post-stress", got, oracleTopK(mirror, dead, q))
		}
		idx.Compact()
		if segs, mem := idx.Segments(); segs > 1 || mem != 0 {
			t.Fatalf("after Compact: %d segments, %d memtable rows", segs, mem)
		}
	}
}

// TestShardedIndexConcurrentStress hammers one ShardedIndex with concurrent
// TopK, BatchTopK, Insert, and Remove from many goroutines — the workload
// the per-shard locking exists for. In-flight answers can interleave with
// updates arbitrarily, so they are only sanity-checked; once every goroutine
// has joined, the index must agree with the scan oracle over the mirrored
// live set exactly. Run under -race this doubles as the memory-model check.
func TestShardedIndexConcurrentStress(t *testing.T) {
	roles := []Role{Repulsive, Attractive, Repulsive}
	data := dataset.Generate(dataset.Uniform, 2_000, len(roles), 33)
	idx, err := NewShardedIndex(data, roles, WithShards(4), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()

	// mirror tracks every row ever indexed; markers record which inserts
	// and removes actually happened, under one lock shared by the writers.
	var mirrorMu sync.Mutex
	mirror := append([][]float64(nil), data...)
	dead := make([]bool, len(mirror))

	newQuery := func(rng *rand.Rand) Query {
		q := Query{
			Point:   make([]float64, len(roles)),
			K:       1 + rng.Intn(12),
			Roles:   roles,
			Weights: make([]float64, len(roles)),
		}
		for d := range q.Point {
			q.Point[d] = rng.Float64()
			q.Weights[d] = rng.Float64()
		}
		return q
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	const steps = 150
	for w := 0; w < 4; w++ { // query goroutines
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for i := 0; i < steps; i++ {
				res, err := idx.TopK(newQuery(rng))
				if err != nil {
					fail(err)
					return
				}
				for j := 1; j < len(res); j++ {
					if res[j].Score > res[j-1].Score {
						fail(fmt.Errorf("unsorted concurrent answer: %v", res))
						return
					}
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ { // batch goroutines
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(2000 + w)))
			for i := 0; i < steps/10; i++ {
				queries := make([]Query, 8)
				for j := range queries {
					queries[j] = newQuery(rng)
				}
				if _, err := idx.BatchTopK(queries); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ { // insert goroutines
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(3000 + w)))
			for i := 0; i < steps; i++ {
				p := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
				mirrorMu.Lock()
				id, err := idx.Insert(p)
				if err == nil && id != len(mirror) {
					err = fmt.Errorf("Insert returned id %d, want %d", id, len(mirror))
				}
				if err == nil {
					mirror = append(mirror, p)
					dead = append(dead, false)
				}
				mirrorMu.Unlock()
				if err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ { // remove goroutines
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(4000 + w)))
			for i := 0; i < steps; i++ {
				mirrorMu.Lock()
				id := rng.Intn(len(mirror))
				if idx.Remove(id) {
					dead[id] = true
				}
				mirrorMu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Post-hoc consistency: the settled index must answer exactly like the
	// scan oracle over the mirrored live rows.
	live := 0
	for _, d := range dead {
		if !d {
			live++
		}
	}
	if idx.Len() != live {
		t.Fatalf("Len = %d, mirror has %d live rows", idx.Len(), live)
	}
	rng := rand.New(rand.NewSource(5000))
	for i := 0; i < 30; i++ {
		q := newQuery(rng)
		got, err := idx.TopK(q)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "post-stress", got, oracleTopK(mirror, dead, q))
	}
}
