package sdquery

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dataset"
)

// TestConcurrentQueries: a shared SDIndex must serve parallel queries with
// answers identical to the sequential ones (the read-only query path holds
// all per-query state in cursors).
func TestConcurrentQueries(t *testing.T) {
	data := dataset.Generate(dataset.AntiCorrelated, 30_000, 4, 8)
	roles := []Role{Repulsive, Attractive, Repulsive, Attractive}
	idx, err := NewSDIndex(data, roles)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	const nq = 64
	queries := make([]Query, nq)
	for i := range queries {
		queries[i] = Query{
			Point:   []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()},
			K:       1 + rng.Intn(10),
			Roles:   roles,
			Weights: []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()},
		}
	}
	sequential := make([][]Result, nq)
	for i, q := range queries {
		r, err := idx.TopK(q)
		if err != nil {
			t.Fatal(err)
		}
		sequential[i] = r
	}

	var wg sync.WaitGroup
	errs := make(chan error, nq*4)
	for worker := 0; worker < 4; worker++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < nq; i += 4 {
				got, err := idx.TopK(queries[i])
				if err != nil {
					errs <- err
					return
				}
				for j := range sequential[i] {
					if math.Abs(got[j].Score-sequential[i][j].Score) > 1e-12 {
						t.Errorf("query %d rank %d: concurrent %v vs sequential %v",
							i, j, got[j].Score, sequential[i][j].Score)
						return
					}
				}
			}
		}(worker)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestShardedIndexConcurrentStress hammers one ShardedIndex with concurrent
// TopK, BatchTopK, Insert, and Remove from many goroutines — the workload
// the per-shard locking exists for. In-flight answers can interleave with
// updates arbitrarily, so they are only sanity-checked; once every goroutine
// has joined, the index must agree with the scan oracle over the mirrored
// live set exactly. Run under -race this doubles as the memory-model check.
func TestShardedIndexConcurrentStress(t *testing.T) {
	roles := []Role{Repulsive, Attractive, Repulsive}
	data := dataset.Generate(dataset.Uniform, 2_000, len(roles), 33)
	idx, err := NewShardedIndex(data, roles, WithShards(4), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()

	// mirror tracks every row ever indexed; markers record which inserts
	// and removes actually happened, under one lock shared by the writers.
	var mirrorMu sync.Mutex
	mirror := append([][]float64(nil), data...)
	dead := make([]bool, len(mirror))

	newQuery := func(rng *rand.Rand) Query {
		q := Query{
			Point:   make([]float64, len(roles)),
			K:       1 + rng.Intn(12),
			Roles:   roles,
			Weights: make([]float64, len(roles)),
		}
		for d := range q.Point {
			q.Point[d] = rng.Float64()
			q.Weights[d] = rng.Float64()
		}
		return q
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	const steps = 150
	for w := 0; w < 4; w++ { // query goroutines
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for i := 0; i < steps; i++ {
				res, err := idx.TopK(newQuery(rng))
				if err != nil {
					fail(err)
					return
				}
				for j := 1; j < len(res); j++ {
					if res[j].Score > res[j-1].Score {
						fail(fmt.Errorf("unsorted concurrent answer: %v", res))
						return
					}
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ { // batch goroutines
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(2000 + w)))
			for i := 0; i < steps/10; i++ {
				queries := make([]Query, 8)
				for j := range queries {
					queries[j] = newQuery(rng)
				}
				if _, err := idx.BatchTopK(queries); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ { // insert goroutines
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(3000 + w)))
			for i := 0; i < steps; i++ {
				p := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
				mirrorMu.Lock()
				id, err := idx.Insert(p)
				if err == nil && id != len(mirror) {
					err = fmt.Errorf("Insert returned id %d, want %d", id, len(mirror))
				}
				if err == nil {
					mirror = append(mirror, p)
					dead = append(dead, false)
				}
				mirrorMu.Unlock()
				if err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ { // remove goroutines
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(4000 + w)))
			for i := 0; i < steps; i++ {
				mirrorMu.Lock()
				id := rng.Intn(len(mirror))
				if idx.Remove(id) {
					dead[id] = true
				}
				mirrorMu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Post-hoc consistency: the settled index must answer exactly like the
	// scan oracle over the mirrored live rows.
	live := 0
	for _, d := range dead {
		if !d {
			live++
		}
	}
	if idx.Len() != live {
		t.Fatalf("Len = %d, mirror has %d live rows", idx.Len(), live)
	}
	rng := rand.New(rand.NewSource(5000))
	for i := 0; i < 30; i++ {
		q := newQuery(rng)
		got, err := idx.TopK(q)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "post-stress", got, oracleTopK(mirror, dead, q))
	}
}
